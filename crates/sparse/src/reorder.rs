//! CSR bandwidth-friendly reordering: degree-sorted row/column permutation.
//!
//! Hub-heavy (power-law) graphs scatter their high-degree rows across the index
//! space, so the SpMM kernels touch the dense-RHS rows in a cache-hostile
//! pattern. Sorting nodes by degree (hubs first) clusters the hot rows at the
//! top of the matrix — the layout the `RowBlocking::ByNnz` work splitting only
//! approximates. This module is the first installment of that reordering story:
//! a deterministic degree-sort permutation, the permuted matrix, and the
//! row-permutation helpers needed to push dense node-indexed data (seed
//! matrices, predictions) into and back out of the reordered index space.
//!
//! Reordering is a relabeling, not an approximation: on unweighted graphs the
//! per-row SpMM sums are integer-valued and therefore order-independent, so
//! path counts — and the predictions derived from them — map back
//! **bit-identically** (covered by the hub-graph round-trip test).

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};

/// A degree-sort reordering of a square CSR matrix: the permuted matrix plus
/// both directions of the node relabeling.
#[derive(Debug, Clone)]
pub struct DegreeReordering {
    /// The reordered matrix: row/column `new` holds old node `perm[new]`.
    pub matrix: CsrMatrix,
    /// `perm[new] = old`: the old node stored at each new position.
    pub perm: Vec<usize>,
    /// `inverse[old] = new`: where each old node landed.
    pub inverse: Vec<usize>,
}

impl DegreeReordering {
    /// Map dense node-indexed rows (seed matrix, features) into the reordered
    /// index space: `out.row(new) = x.row(perm[new])`.
    pub fn permute_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        permute_rows(x, &self.perm)
    }

    /// Map reordered results (counts, predictions) back to original node
    /// order: `out.row(old) = y.row(inverse[old])`. Exact inverse of
    /// [`DegreeReordering::permute_dense`] — no arithmetic, so bit-identical.
    pub fn restore_dense(&self, y: &DenseMatrix) -> Result<DenseMatrix> {
        permute_rows(y, &self.inverse)
    }
}

/// Reorder a square CSR matrix so rows are sorted by stored-entry count
/// (degree) descending, ties broken by the original index ascending — a
/// deterministic hub-first relabeling applied symmetrically to rows and
/// columns.
pub fn reorder_by_degree(a: &CsrMatrix) -> Result<DegreeReordering> {
    if !a.is_square() {
        return Err(SparseError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let n = a.rows();
    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by(|&i, &j| a.row_nnz(j).cmp(&a.row_nnz(i)).then(i.cmp(&j)));
    let mut inverse = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old] = new;
    }
    // Rebuild the CSR arrays directly: row `new` is old row `perm[new]` with
    // every column index relabeled through `inverse` and re-sorted (CSR keeps
    // columns ascending within a row).
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices = Vec::with_capacity(a.nnz());
    let mut values = Vec::with_capacity(a.nnz());
    indptr.push(0);
    let mut row_buf: Vec<(usize, f64)> = Vec::new();
    for &old in &perm {
        let (cols, vals) = a.row(old);
        row_buf.clear();
        row_buf.extend(cols.iter().zip(vals.iter()).map(|(&c, &v)| (inverse[c], v)));
        row_buf.sort_by_key(|&(c, _)| c);
        for &(c, v) in &row_buf {
            indices.push(c);
            values.push(v);
        }
        indptr.push(indices.len());
    }
    let matrix = CsrMatrix::from_raw(n, n, indptr, indices, values)?;
    Ok(DegreeReordering {
        matrix,
        perm,
        inverse,
    })
}

/// Permute dense rows: `out.row(i) = x.row(p[i])`. `p` must be a permutation
/// of `0..x.rows()` (validated); pure data movement, so always bit-exact.
pub fn permute_rows(x: &DenseMatrix, p: &[usize]) -> Result<DenseMatrix> {
    let n = x.rows();
    if p.len() != n {
        return Err(SparseError::InvalidInput(format!(
            "permutation length {} does not match {} rows",
            p.len(),
            n
        )));
    }
    let mut seen = vec![false; n];
    for &old in p {
        if old >= n || seen[old] {
            return Err(SparseError::InvalidInput(format!(
                "invalid permutation entry {old} (rows {n})"
            )));
        }
        seen[old] = true;
    }
    let mut out = DenseMatrix::zeros(n, x.cols());
    for (new, &old) in p.iter().enumerate() {
        out.row_mut(new).copy_from_slice(x.row(old));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hub-and-spoke graph: node 3 is the hub, plus a 0–1 edge.
    fn hub_graph() -> CsrMatrix {
        CsrMatrix::from_triplets(
            5,
            5,
            &[
                (3, 0, 1.0),
                (0, 3, 1.0),
                (3, 1, 1.0),
                (1, 3, 1.0),
                (3, 2, 1.0),
                (2, 3, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
            ],
        )
    }

    #[test]
    fn hub_lands_first_and_degrees_are_sorted() {
        let a = hub_graph();
        let r = reorder_by_degree(&a).unwrap();
        assert_eq!(r.perm[0], 3, "hub must be relabeled to node 0");
        let degrees: Vec<usize> = (0..5).map(|i| r.matrix.row_nnz(i)).collect();
        let mut sorted = degrees.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(degrees, sorted);
        assert_eq!(r.matrix.nnz(), a.nnz());
        assert!(r.matrix.is_symmetric(0.0));
    }

    #[test]
    fn reordering_is_a_relabeling() {
        let a = hub_graph();
        let r = reorder_by_degree(&a).unwrap();
        for new_i in 0..5 {
            for new_j in 0..5 {
                assert_eq!(
                    r.matrix.get(new_i, new_j),
                    a.get(r.perm[new_i], r.perm[new_j])
                );
            }
        }
    }

    #[test]
    fn dense_round_trip_is_bit_identical() {
        let a = hub_graph();
        let r = reorder_by_degree(&a).unwrap();
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.25],
            vec![0.0, -3.5],
            vec![0.5, 2.0],
            vec![7.0, 0.125],
            vec![-1.0, 0.0625],
        ])
        .unwrap();
        let permuted = r.permute_dense(&x).unwrap();
        let restored = r.restore_dense(&permuted).unwrap();
        assert_eq!(restored.data(), x.data());
    }

    #[test]
    fn spmm_on_reordered_matrix_maps_back_bit_identically() {
        // Unweighted graph, integer-valued seed matrix: every per-row sum is an
        // exact integer, so summation order cannot change the result and the
        // reordered computation must map back bit-for-bit.
        let a = hub_graph();
        let r = reorder_by_degree(&a).unwrap();
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            vec![1.0, 0.0],
        ])
        .unwrap();
        // Two hops in each index space.
        let direct = a.spmm_dense(&a.spmm_dense(&x).unwrap()).unwrap();
        let xp = r.permute_dense(&x).unwrap();
        let two_hop = r
            .matrix
            .spmm_dense(&r.matrix.spmm_dense(&xp).unwrap())
            .unwrap();
        let restored = r.restore_dense(&two_hop).unwrap();
        assert_eq!(restored.data(), direct.data());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(reorder_by_degree(&CsrMatrix::zeros(2, 3)).is_err());
        let x = DenseMatrix::zeros(3, 2);
        assert!(permute_rows(&x, &[0, 1]).is_err());
        assert!(permute_rows(&x, &[0, 1, 1]).is_err());
        assert!(permute_rows(&x, &[0, 1, 5]).is_err());
    }
}
