//! # fg-sparse
//!
//! Sparse and dense linear-algebra kernels for the `factorized-graphs` workspace, a Rust
//! reproduction of *"Factorized Graph Representations for Semi-Supervised Learning from
//! Sparse Data"* (SIGMOD 2020).
//!
//! The paper's scalability hinges on one evaluation-order rule (its footnote 5): never
//! materialize `Wℓ`; instead push the thin `n x k` label matrix through repeated
//! sparse-times-dense products. This crate provides exactly the kernels needed for that:
//!
//! * [`CsrMatrix`] — compressed sparse row adjacency matrices with `O(nnz·k)`
//!   sparse-times-dense products ([`CsrMatrix::spmm_dense`]), plus the sparse-sparse
//!   product used only by the unfactorized baseline.
//! * [`CooMatrix`] — a triplet builder for assembling graphs edge by edge.
//! * [`DenseMatrix`] — small row-major dense matrices for the `k x k` sketches and the
//!   `n x k` belief matrices, with the three normalization variants from Section 4.3.
//! * [`parallel`] — a thread-parallel execution layer for the hot kernels
//!   (`spmm_dense`, `spmv`, Gustavson `spmm`), hand-rolled on [`std::thread::scope`]
//!   with a [`Threads`] policy and bit-identical output to the serial paths.
//! * [`spectral`] — power-iteration spectral-radius estimates used for LinBP's
//!   convergence scaling (Eq. 2).
//! * [`eigen`] — a dependency-free symmetric eigensolver (blocked subspace
//!   iteration + Rayleigh–Ritz, deterministic seeded start) powering the
//!   low-rank `V·Λ·Vᵀ` counting backend.
//! * [`reorder`] — degree-sort CSR reordering for hub-heavy graphs, with
//!   bit-exact dense row permutation helpers.
//! * [`vector`] — plain-slice vector helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coo;
pub mod csr;
pub mod dense;
pub mod eigen;
pub mod error;
pub mod parallel;
pub mod reorder;
pub mod spectral;
pub mod vector;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use eigen::{
    symmetric_eigen, EigenConfig, EigenPairs, DEFAULT_EIGEN_MAX_ITER, DEFAULT_EIGEN_SEED,
    DEFAULT_EIGEN_TOL,
};
pub use error::{Result, SparseError};
pub use parallel::{
    map_row_chunks, partition_rows, partition_rows_by_nnz, run_ordered_cells, RowBlocking, Threads,
};
pub use reorder::{permute_rows, reorder_by_degree, DegreeReordering};
pub use spectral::{spectral_radius, spectral_radius_dense, spectral_radius_sparse};

#[cfg(test)]
mod integration_tests {
    use super::*;

    #[test]
    fn coo_to_csr_to_dense_pipeline() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 1.0).unwrap();
        coo.push_symmetric(1, 2, 2.0).unwrap();
        let csr = coo.to_csr();
        let dense = csr.to_dense();
        assert_eq!(dense.get(0, 1), 1.0);
        assert_eq!(dense.get(2, 1), 2.0);
        assert!(csr.is_symmetric(0.0));
    }

    #[test]
    fn factorized_vs_explicit_power_order() {
        // (W W) X == W (W X): the algebraic identity the factorized summation exploits.
        let w = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        );
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
        ])
        .unwrap();
        let explicit = w.spmm(&w).unwrap().spmm_dense(&x).unwrap();
        let factorized = w.spmm_dense(&w.spmm_dense(&x).unwrap()).unwrap();
        assert!(explicit.approx_eq(&factorized, 1e-12));
    }
}
