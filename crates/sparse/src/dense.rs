//! Dense row-major matrices of `f64`.
//!
//! The estimation step of the paper works on small `k x k` and `n x k` dense matrices
//! (class-statistics sketches, belief matrices). This module provides the dense kernels
//! used there: products, transposes, element-wise arithmetic, Frobenius norms, matrix
//! powers, and the normalization helpers used to build observed statistics matrices.

use crate::error::{Result, SparseError};

/// A dense, row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix of the given shape filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::InvalidInput(format!(
                "expected {} values for a {}x{} matrix, got {}",
                rows * cols,
                rows,
                cols,
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Create a matrix from nested row slices, inferring the shape.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err(SparseError::InvalidInput(
                "all rows must have the same length".into(),
            ));
        }
        let data: Vec<f64> = rows.iter().flat_map(|r| r.iter().copied()).collect();
        Ok(DenseMatrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Read the entry at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Write the entry at `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Add `value` to the entry at `(i, j)`.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += value;
    }

    /// Borrow the underlying row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        debug_assert!(j < self.cols);
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(SparseError::DimensionMismatch {
                op: "dense matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = self.get(i, l);
                if a == 0.0 {
                    continue;
                }
                let other_row = other.row(l);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(other_row.iter()) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                op: "dense matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self
                .row(i)
                .iter()
                .zip(v.iter())
                .map(|(a, b)| a * b)
                .sum::<f64>();
        }
        Ok(out)
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "dense add", |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "dense sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product `self .* other`.
    pub fn hadamard(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(other, "dense hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        other: &DenseMatrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<DenseMatrix> {
        if self.shape() != other.shape() {
            return Err(SparseError::DimensionMismatch {
                op,
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiply every entry by a scalar, in place.
    pub fn scale_in_place(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Return a copy scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> DenseMatrix {
        let mut out = self.clone();
        out.scale_in_place(factor);
        out
    }

    /// Add a scalar to every entry ("broadcasting" in the paper's notation).
    pub fn add_scalar(&self, value: f64) -> DenseMatrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v += value;
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Vector of row sums.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Vector of column sums.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(i)) {
                *s += v;
            }
        }
        sums
    }

    /// Frobenius norm `sqrt(sum_ij X_ij^2)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm of `self - other`.
    pub fn frobenius_distance_sq(&self, other: &DenseMatrix) -> Result<f64> {
        if self.shape() != other.shape() {
            return Err(SparseError::DimensionMismatch {
                op: "frobenius distance",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum())
    }

    /// Frobenius (L2) distance `||self - other||`.
    pub fn frobenius_distance(&self, other: &DenseMatrix) -> Result<f64> {
        Ok(self.frobenius_distance_sq(other)?.sqrt())
    }

    /// Matrix power `self^p` for a square matrix (`p >= 0`; `p == 0` is the identity).
    pub fn pow(&self, p: usize) -> Result<DenseMatrix> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut result = DenseMatrix::identity(self.rows);
        for _ in 0..p {
            result = result.matmul(self)?;
        }
        Ok(result)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Index of the maximum entry in row `i` (ties resolved to the lowest index).
    pub fn argmax_row(&self, i: usize) -> usize {
        let row = self.row(i);
        let mut best = 0;
        let mut best_val = f64::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            if v > best_val {
                best_val = v;
                best = j;
            }
        }
        best
    }

    /// Whether every entry differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Row-normalize: divide each row by its sum, `diag(M 1)^{-1} M` (variant 1 in the
    /// paper, Eq. 9). Rows summing to zero are left unchanged.
    pub fn row_normalized(&self) -> DenseMatrix {
        let mut out = self.clone();
        for i in 0..out.rows {
            let s: f64 = out.row(i).iter().sum();
            if s.abs() > 0.0 {
                for v in out.row_mut(i) {
                    *v /= s;
                }
            }
        }
        out
    }

    /// Symmetric normalization `diag(M 1)^{-1/2} M diag(M 1)^{-1/2}` (variant 2, Eq. 10).
    /// Rows with zero sum contribute a scaling factor of zero.
    pub fn symmetric_normalized(&self) -> DenseMatrix {
        let sums = self.row_sums();
        let inv_sqrt: Vec<f64> = sums
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 0.0 })
            .collect();
        let mut out = self.clone();
        for i in 0..out.rows {
            for j in 0..out.cols {
                let v = out.get(i, j) * inv_sqrt[i] * inv_sqrt.get(j).copied().unwrap_or(0.0);
                out.set(i, j, v);
            }
        }
        out
    }

    /// Scale so that the average entry equals `1/k` where `k = cols`:
    /// `k (1ᵀ M 1)^{-1} M` (variant 3, Eq. 11). Zero matrices are returned unchanged.
    pub fn mean_scaled(&self) -> DenseMatrix {
        let total = self.sum();
        if total.abs() == 0.0 {
            return self.clone();
        }
        self.scaled(self.cols as f64 / total)
    }

    /// Center every entry around `1/k` where `k = cols` (the residual form used by LinBP).
    pub fn centered(&self) -> DenseMatrix {
        self.add_scalar(-1.0 / self.cols as f64)
    }

    /// Check that the matrix is (numerically) symmetric.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Check that every row and column sums to 1 within `tol` (doubly stochastic,
    /// ignoring sign).
    pub fn is_doubly_stochastic(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.row_sums().iter().all(|s| (s - 1.0).abs() <= tol)
            && self.col_sums().iter().all(|s| (s - 1.0).abs() <= tol)
    }

    /// Trace of a square matrix.
    pub fn trace(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(SparseError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap()
    }

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.data().iter().all(|&v| v == 0.0));
        assert!(!m.is_square());
    }

    #[test]
    fn identity_is_diagonal() {
        let m = DenseMatrix::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn get_set_add_at() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 1, 5.0);
        m.add_at(0, 1, 2.0);
        assert_eq!(m.get(0, 1), 7.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let id = DenseMatrix::identity(2);
        assert_eq!(m.matmul(&id).unwrap(), m);
        assert_eq!(id.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        let v = m.matvec(&[1.0, 1.0]).unwrap();
        assert_eq!(v, vec![3.0, 7.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn add_sub_hadamard() {
        let a = sample();
        let b = DenseMatrix::filled(2, 2, 1.0);
        assert_eq!(
            a.add(&b).unwrap(),
            DenseMatrix::from_rows(&[vec![2.0, 3.0], vec![4.0, 5.0]]).unwrap()
        );
        assert_eq!(a.sub(&a).unwrap(), DenseMatrix::zeros(2, 2));
        assert_eq!(a.hadamard(&b).unwrap(), a);
        assert!(a.add(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn scaling_and_scalar_add() {
        let a = sample();
        assert_eq!(a.scaled(2.0).get(1, 1), 8.0);
        assert_eq!(a.add_scalar(1.0).get(0, 0), 2.0);
    }

    #[test]
    fn sums_and_norms() {
        let a = sample();
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
        let expected = (1.0f64 + 4.0 + 9.0 + 16.0).sqrt();
        assert!((a.frobenius_norm() - expected).abs() < 1e-12);
    }

    #[test]
    fn frobenius_distance_zero_for_identical() {
        let a = sample();
        assert_eq!(a.frobenius_distance(&a).unwrap(), 0.0);
        let b = a.add_scalar(1.0);
        assert!((a.frobenius_distance(&b).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pow_matches_repeated_matmul() {
        let a = sample();
        let a3 = a.pow(3).unwrap();
        let manual = a.matmul(&a).unwrap().matmul(&a).unwrap();
        assert!(a3.approx_eq(&manual, 1e-9));
        assert_eq!(a.pow(0).unwrap(), DenseMatrix::identity(2));
        assert!(DenseMatrix::zeros(2, 3).pow(2).is_err());
    }

    #[test]
    fn argmax_row_picks_largest() {
        let m = DenseMatrix::from_rows(&[vec![0.1, 0.7, 0.2], vec![0.9, 0.05, 0.05]]).unwrap();
        assert_eq!(m.argmax_row(0), 1);
        assert_eq!(m.argmax_row(1), 0);
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let m = sample();
        let n = m.row_normalized();
        for s in n.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
        // zero rows stay zero
        let z = DenseMatrix::zeros(2, 2).row_normalized();
        assert_eq!(z, DenseMatrix::zeros(2, 2));
    }

    #[test]
    fn symmetric_normalized_preserves_symmetry() {
        let m = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let n = m.symmetric_normalized();
        assert!(n.is_symmetric(1e-12));
    }

    #[test]
    fn mean_scaled_average_entry_is_one_over_k() {
        let m = sample();
        let n = m.mean_scaled();
        let avg = n.sum() / 4.0;
        assert!((avg - 0.5).abs() < 1e-12); // 1/k with k=2
    }

    #[test]
    fn centered_subtracts_one_over_k() {
        let m = DenseMatrix::filled(2, 2, 0.5);
        let c = m.centered();
        assert!(c.data().iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn doubly_stochastic_check() {
        let h = DenseMatrix::from_rows(&[vec![0.2, 0.8], vec![0.8, 0.2]]).unwrap();
        assert!(h.is_doubly_stochastic(1e-12));
        assert!(h.is_symmetric(1e-12));
        let not = sample();
        assert!(!not.is_doubly_stochastic(1e-12));
    }

    #[test]
    fn trace_of_square() {
        assert_eq!(sample().trace().unwrap(), 5.0);
        assert!(DenseMatrix::zeros(2, 3).trace().is_err());
    }

    #[test]
    fn max_abs_finds_extreme() {
        let m = DenseMatrix::from_rows(&[vec![-5.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
    }

    #[test]
    fn row_and_col_access() {
        let m = sample();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }
}
