//! Thread-parallel execution layer for the sparse kernels.
//!
//! The paper's estimation algorithm stays `O(m·k·ℓmax)` precisely so it scales to
//! graphs with millions of edges; on such graphs the three hot kernels —
//! [`CsrMatrix::spmm_dense`], [`CsrMatrix::spmv`], and the Gustavson product
//! [`CsrMatrix::spmm`] — dominate the wall clock. This module parallelizes them with
//! hand-rolled [`std::thread::scope`] workers (the build environment has no crates.io
//! access, so no rayon): the output rows are split into disjoint contiguous ranges,
//! each thread runs the *same* per-row kernel the serial code uses on its own range,
//! and the per-range results are stitched back together in row order. Because no
//! thread ever reduces across a row boundary, no floating-point operation is
//! reordered: the parallel results are **bit-identical** to the serial ones.
//!
//! The thread count is chosen via [`Threads`] (`Serial | Fixed(n) | Auto`), which is
//! threaded through the propagation configs, `fg_core::Pipeline`, and the
//! `fg --threads N` CLI option.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use fg_obs::Span;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread policy for the parallel kernels.
///
/// The default is [`Threads::Serial`], which makes every kernel take the exact serial
/// code path (no thread is spawned), so existing callers are unaffected until they
/// opt in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Threads {
    /// Single-threaded: run the serial kernel on the calling thread.
    #[default]
    Serial,
    /// Use exactly `n` worker threads (values of 0 and 1 behave like `Serial`).
    Fixed(usize),
    /// Use one worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    Auto,
}

impl Threads {
    /// Resolve the policy to a concrete thread count (always at least 1).
    pub fn count(self) -> usize {
        match self {
            Threads::Serial => 1,
            Threads::Fixed(n) => n.max(1),
            Threads::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// The number of workers to use for `rows` rows of output: the resolved count,
    /// capped so no worker is left without a row.
    pub fn count_for(self, rows: usize) -> usize {
        self.count().min(rows.max(1))
    }
}

impl std::str::FromStr for Threads {
    type Err = String;

    /// Parse a CLI-style spec: `serial`, `auto`, `0` (= auto), or a thread count.
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "serial" => Ok(Threads::Serial),
            "auto" | "0" => Ok(Threads::Auto),
            other => other
                .parse::<usize>()
                .map(|n| {
                    if n <= 1 {
                        Threads::Serial
                    } else {
                        Threads::Fixed(n)
                    }
                })
                .map_err(|_| format!("invalid thread spec '{s}' (expected serial, auto, or N)")),
        }
    }
}

impl std::fmt::Display for Threads {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Threads::Serial => write!(f, "serial"),
            Threads::Fixed(n) => write!(f, "{n}"),
            Threads::Auto => write!(f, "auto"),
        }
    }
}

/// Split `0..rows` into at most `parts` contiguous, non-empty ranges of near-equal
/// length (the first `rows % parts` ranges get one extra row).
pub fn partition_rows(rows: usize, parts: usize) -> Vec<Range<usize>> {
    if rows == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, rows);
    let base = rows / parts;
    let extra = rows % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Split the rows of a CSR matrix into at most `parts` contiguous, non-empty ranges of
/// near-equal *work* (stored entries, read off `indptr`). Rows with wildly uneven
/// degrees — the norm for power-law graphs — make equal-row splits badly unbalanced;
/// this keeps each worker's `nnz` share within one row of the ideal. When leading
/// rows carry no work, a range may absorb them and fewer than `parts` ranges come
/// back — callers size their worker pool from `ranges.len()`, not `parts`.
pub fn partition_rows_by_nnz(indptr: &[usize], parts: usize) -> Vec<Range<usize>> {
    let rows = indptr.len().saturating_sub(1);
    if rows == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, rows);
    let total = indptr[rows];
    if total == 0 {
        return partition_rows(rows, parts);
    }
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        if start == rows {
            break;
        }
        // Advance until this range holds its proportional share of the entries.
        let target = (total as u128 * (p as u128 + 1) / parts as u128) as usize;
        let mut end = start + 1;
        while end < rows && indptr[end] < target {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    if start < rows {
        // Give any leftover rows to the last range.
        let last = ranges.last_mut().expect("parts >= 1");
        last.end = rows;
    }
    ranges
}

/// Row-blocking layout for the dense-RHS SpMM kernels.
///
/// [`RowBlocking::ByNnz`] bounds the stored entries processed per block, so on
/// hub-heavy (power-law) graphs a run of low-degree rows — whose gathered RHS rows
/// tend to share cache lines — is consumed while those lines are hot, instead of a
/// single giant row evicting them between neighbors. Rows are never split and blocks
/// run in row order, so the output is bit-identical to [`RowBlocking::Contiguous`]
/// at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowBlocking {
    /// One contiguous pass over each worker's row range (the default).
    #[default]
    Contiguous,
    /// Process each worker's range in sub-blocks of roughly this many stored
    /// entries (at least one row per block; 0 behaves like `Contiguous`).
    ByNnz(usize),
}

/// Split `range` into consecutive sub-ranges of roughly `target_nnz` stored entries
/// each (read off `indptr`), never splitting a row. A degenerate target yields the
/// whole range as one block.
fn split_range_by_nnz(
    indptr: &[usize],
    range: Range<usize>,
    target_nnz: usize,
) -> Vec<Range<usize>> {
    if range.is_empty() {
        return Vec::new();
    }
    if target_nnz == 0 {
        return vec![range];
    }
    let mut blocks = Vec::new();
    let mut start = range.start;
    while start < range.end {
        let goal = indptr[start] + target_nnz;
        let mut end = start + 1;
        while end < range.end && indptr[end + 1] <= goal {
            end += 1;
        }
        blocks.push(start..end);
        start = end;
    }
    blocks
}

/// Run `f` over disjoint row-chunks of `out` on one scoped thread per range.
///
/// `ranges` must be a contiguous partition of `0..out.len() / row_width` starting at 0
/// (what the partitioners above produce); chunk `i` of `out` holds rows
/// `ranges[i].start..ranges[i].end`, each `row_width` values wide. With a single range
/// `f` runs inline on the calling thread — no thread is spawned. Returns the per-range
/// results in range order.
pub fn map_row_chunks<R, F>(
    out: &mut [f64],
    row_width: usize,
    ranges: &[Range<usize>],
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>, &mut [f64]) -> R + Sync,
{
    debug_assert!(
        ranges.is_empty()
            || (ranges[0].start == 0 && ranges.last().unwrap().end * row_width == out.len()),
        "ranges must be a contiguous partition of the output rows"
    );
    if ranges.len() <= 1 {
        return ranges
            .iter()
            .map(|r| f(r.clone(), &mut out[r.start * row_width..r.end * row_width]))
            .collect();
    }
    // Spawn workers for all ranges but the last, which runs inline on the calling
    // thread (otherwise the caller would park in `scope` doing nothing): N-way
    // parallelism costs N - 1 spawns.
    let (last, head) = ranges.split_last().expect("ranges checked non-empty above");
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(head.len());
        let mut rest = out;
        for r in head {
            let (chunk, tail) = rest.split_at_mut((r.end - r.start) * row_width);
            rest = tail;
            let worker = &f;
            handles.push(scope.spawn(move || worker(r.clone(), chunk)));
        }
        let last_result = f(last.clone(), rest);
        let mut results: Vec<R> = handles
            .into_iter()
            .map(|h| h.join().expect("parallel kernel worker panicked"))
            .collect();
        results.push(last_result);
        results
    })
}

/// Distribute `cell_count` independent cells across scoped worker threads via a
/// shared atomic work queue, reassembling the per-cell results in their original
/// order. Each cell must be derivable from its index alone, so the output is
/// identical to a serial `(0..cell_count).map(run_cell)` loop regardless of which
/// worker picks up which cell; the first error (in worker-join order) aborts the
/// whole call. Cells are *started* in index order — the queue is a single atomic
/// counter — which callers with cross-cell ordering constraints (e.g. the manifest
/// runner's first-entry-computes rule) build on. With one worker the loop runs
/// inline on the calling thread.
pub fn run_ordered_cells<T, E, F>(
    cell_count: usize,
    threads: Threads,
    run_cell: F,
) -> std::result::Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> std::result::Result<T, E> + Sync,
{
    let workers = threads.count_for(cell_count);
    if workers <= 1 {
        return (0..cell_count).map(run_cell).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<std::result::Result<Vec<(usize, T)>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cell_count {
                            break;
                        }
                        local.push((i, run_cell(i)?));
                    }
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cell worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..cell_count).map(|_| None).collect();
    for worker in per_worker {
        for (i, outcome) in worker? {
            slots[i] = Some(outcome);
        }
    }
    Ok(slots
        .into_iter()
        .map(|slot| slot.expect("every cell is computed exactly once"))
        .collect())
}

impl CsrMatrix {
    /// [`CsrMatrix::spmm_dense`] under a [`Threads`] policy. Bit-identical to the
    /// serial kernel: each worker owns a disjoint row range of the output, so no
    /// floating-point accumulation is reordered.
    pub fn spmm_dense_with(&self, dense: &DenseMatrix, threads: Threads) -> Result<DenseMatrix> {
        self.spmm_dense_blocked(dense, threads, RowBlocking::Contiguous)
    }

    /// [`CsrMatrix::spmm_dense_with`] with an explicit [`RowBlocking`] layout. The
    /// blocking only changes the traversal grouping (each row's output is still
    /// produced by exactly one pass, in row order), so every layout is bit-identical
    /// to the serial kernel.
    pub fn spmm_dense_blocked(
        &self,
        dense: &DenseMatrix,
        threads: Threads,
        blocking: RowBlocking,
    ) -> Result<DenseMatrix> {
        if self.cols() != dense.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "csr * dense",
                left: self.shape(),
                right: dense.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows(), dense.cols());
        self.spmm_dense_run(dense, threads, blocking, &mut out);
        Ok(out)
    }

    /// [`CsrMatrix::spmm_dense_with`] writing into a caller-owned output buffer of
    /// shape `(self.rows(), dense.cols())`. Every output value is overwritten —
    /// `out` needs no zeroing, so a loop like the path-count recurrence can reuse
    /// the same buffers across iterations with zero per-iteration allocations.
    pub fn spmm_dense_into(
        &self,
        dense: &DenseMatrix,
        threads: Threads,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        if self.cols() != dense.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "csr * dense",
                left: self.shape(),
                right: dense.shape(),
            });
        }
        if out.shape() != (self.rows(), dense.cols()) {
            return Err(SparseError::DimensionMismatch {
                op: "csr * dense (into)",
                left: (self.rows(), dense.cols()),
                right: out.shape(),
            });
        }
        self.spmm_dense_run(dense, threads, RowBlocking::Contiguous, out);
        Ok(())
    }

    /// Shared driver behind the dense-RHS SpMM entry points: split the output rows
    /// across workers by nnz, then run the (overwriting) row kernel per range —
    /// optionally in nnz-bounded sub-blocks. Dimensions are already checked.
    fn spmm_dense_run(
        &self,
        dense: &DenseMatrix,
        threads: Threads,
        blocking: RowBlocking,
        out: &mut DenseMatrix,
    ) {
        let k = dense.cols();
        let workers = threads.count_for(self.rows());
        let _span = Span::enter_with(
            "spmm",
            &[
                ("rows", self.rows() as u64),
                ("nnz", self.nnz() as u64),
                ("k", k as u64),
                ("workers", workers as u64),
            ],
        );
        let ranges = if workers <= 1 {
            if self.rows() == 0 {
                Vec::new()
            } else {
                #[allow(clippy::single_range_in_vec_init)]
                {
                    vec![0..self.rows()]
                }
            }
        } else {
            partition_rows_by_nnz(self.indptr(), workers)
        };
        map_row_chunks(out.data_mut(), k, &ranges, |rows, chunk| {
            let indptr = self.indptr();
            let _chunk_span = Span::enter_with(
                "spmm_chunk",
                &[
                    ("rows", rows.len() as u64),
                    ("nnz", (indptr[rows.end] - indptr[rows.start]) as u64),
                ],
            );
            match blocking {
                RowBlocking::Contiguous => self.spmm_dense_rows_into(dense, rows, chunk),
                RowBlocking::ByNnz(target) => {
                    let base = rows.start;
                    for block in split_range_by_nnz(indptr, rows, target) {
                        let lo = (block.start - base) * k;
                        let hi = (block.end - base) * k;
                        self.spmm_dense_rows_into(dense, block, &mut chunk[lo..hi]);
                    }
                }
            }
        });
    }

    /// [`CsrMatrix::spmv`] under a [`Threads`] policy. Bit-identical to the serial
    /// kernel (each output entry is produced by exactly one worker, with the serial
    /// summation order).
    pub fn spmv_with(&self, v: &[f64], threads: Threads) -> Result<Vec<f64>> {
        let workers = threads.count_for(self.rows());
        if workers <= 1 {
            return self.spmv(v);
        }
        if v.len() != self.cols() {
            return Err(SparseError::DimensionMismatch {
                op: "csr * vector",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows()];
        let ranges = partition_rows_by_nnz(self.indptr(), workers);
        map_row_chunks(&mut out, 1, &ranges, |rows, chunk| {
            self.spmv_rows_into(v, rows, chunk)
        });
        Ok(out)
    }

    /// [`CsrMatrix::spmm`] (Gustavson) under a [`Threads`] policy. Each worker runs
    /// the serial per-row kernel on its own row range with its own dense accumulator;
    /// the per-range outputs concatenate in row order into exactly the serial result.
    pub fn spmm_with(&self, other: &CsrMatrix, threads: Threads) -> Result<CsrMatrix> {
        let workers = threads.count_for(self.rows());
        if workers <= 1 {
            return self.spmm(other);
        }
        if self.cols() != other.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "csr * csr",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let ranges = partition_rows_by_nnz(self.indptr(), workers);
        if ranges.len() <= 1 {
            return self.spmm(other);
        }
        // As in `map_row_chunks`: the last range runs inline on the calling thread.
        let (last, head) = ranges.split_last().expect("at least two ranges");
        let parts: Vec<(Vec<usize>, Vec<usize>, Vec<f64>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = head
                .iter()
                .cloned()
                .map(|rows| scope.spawn(move || self.spmm_rows(other, rows)))
                .collect();
            let last_part = self.spmm_rows(other, last.clone());
            let mut parts: Vec<_> = handles
                .into_iter()
                .map(|h| h.join().expect("parallel spmm worker panicked"))
                .collect();
            parts.push(last_part);
            parts
        });
        let total: usize = parts.iter().map(|(_, idx, _)| idx.len()).sum();
        let mut indptr = Vec::with_capacity(self.rows() + 1);
        indptr.push(0);
        let mut indices = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        for (row_lens, part_indices, part_values) in parts {
            for len in row_lens {
                indptr.push(indptr.last().unwrap() + len);
            }
            indices.extend(part_indices);
            values.extend(part_values);
        }
        Ok(CsrMatrix::from_parts(
            self.rows(),
            other.cols(),
            indptr,
            indices,
            values,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A seeded sparse random matrix with uneven row lengths.
    fn random_csr(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..rows {
            // Skewed degrees: some rows dense, some empty.
            let nnz = if r % 7 == 0 { 0 } else { 1 + rng.gen_index(8) };
            for _ in 0..nnz {
                let c = rng.gen_index(cols);
                triplets.push((r, c, 4.0 * rng.gen::<f64>() - 2.0));
            }
        }
        CsrMatrix::from_triplets(rows, cols, &triplets)
    }

    fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols)
            .map(|_| 2.0 * rng.gen::<f64>() - 1.0)
            .collect();
        DenseMatrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn threads_resolution_and_parsing() {
        assert_eq!(Threads::Serial.count(), 1);
        assert_eq!(Threads::Fixed(0).count(), 1);
        assert_eq!(Threads::Fixed(4).count(), 4);
        assert!(Threads::Auto.count() >= 1);
        assert_eq!(Threads::Fixed(8).count_for(3), 3);
        assert_eq!(Threads::Fixed(8).count_for(0), 1);
        assert_eq!("serial".parse::<Threads>().unwrap(), Threads::Serial);
        assert_eq!("1".parse::<Threads>().unwrap(), Threads::Serial);
        assert_eq!("auto".parse::<Threads>().unwrap(), Threads::Auto);
        assert_eq!("0".parse::<Threads>().unwrap(), Threads::Auto);
        assert_eq!("4".parse::<Threads>().unwrap(), Threads::Fixed(4));
        assert!("bogus".parse::<Threads>().is_err());
        assert_eq!(Threads::default(), Threads::Serial);
        assert_eq!(Threads::Fixed(3).to_string(), "3");
        assert_eq!(Threads::Auto.to_string(), "auto");
    }

    #[test]
    fn partition_rows_covers_everything() {
        for (rows, parts) in [(10, 3), (4, 4), (5, 8), (1, 1), (100, 7)] {
            let ranges = partition_rows(rows, parts);
            assert!(ranges.len() <= parts);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, rows);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(!w[0].is_empty() && !w[1].is_empty());
            }
            let lens: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            assert!(lens.iter().max().unwrap() - lens.iter().min().unwrap() <= 1);
        }
        assert!(partition_rows(0, 4).is_empty());
    }

    #[test]
    fn partition_by_nnz_balances_work() {
        let m = random_csr(200, 50, 11);
        for parts in [1, 2, 3, 4, 7] {
            let ranges = partition_rows_by_nnz(m.indptr(), parts);
            assert_eq!(ranges.first().unwrap().start, 0);
            assert_eq!(ranges.last().unwrap().end, m.rows());
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            for r in &ranges {
                assert!(!r.is_empty());
            }
            // Every range's nnz share is within one max-degree row of the ideal.
            let max_row = (0..m.rows()).map(|i| m.row_nnz(i)).max().unwrap();
            let ideal = m.nnz() / parts;
            for r in &ranges {
                let work: usize = r.clone().map(|i| m.row_nnz(i)).sum();
                assert!(work <= ideal + max_row, "work {work} vs ideal {ideal}");
            }
        }
        // Degenerate inputs.
        assert!(partition_rows_by_nnz(&[0], 4).is_empty());
        assert_eq!(partition_rows_by_nnz(&[0, 0, 0], 2).len(), 2);
        // More parts than rows still yields a full, non-empty cover (possibly fewer
        // ranges than rows when some rows carry no work).
        let tiny = random_csr(3, 5, 2);
        let ranges = partition_rows_by_nnz(tiny.indptr(), 16);
        assert!(!ranges.is_empty() && ranges.len() <= 3);
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, 3);
    }

    #[test]
    fn parallel_spmm_dense_is_bit_identical() {
        let m = random_csr(301, 97, 5);
        let x = random_dense(97, 4, 6);
        let serial = m.spmm_dense(&x).unwrap();
        for threads in [
            Threads::Serial,
            Threads::Fixed(2),
            Threads::Fixed(4),
            Threads::Auto,
        ] {
            let parallel = m.spmm_dense_with(&x, threads).unwrap();
            assert_eq!(serial.data(), parallel.data(), "{threads:?}");
        }
        assert!(m
            .spmm_dense_with(&DenseMatrix::zeros(5, 2), Threads::Fixed(4))
            .is_err());
    }

    #[test]
    fn parallel_spmv_is_bit_identical() {
        let m = random_csr(257, 64, 7);
        let v = random_dense(1, 64, 8).data().to_vec();
        let serial = m.spmv(&v).unwrap();
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            assert_eq!(serial, m.spmv_with(&v, threads).unwrap(), "{threads:?}");
        }
        assert!(m.spmv_with(&[1.0], Threads::Fixed(4)).is_err());
    }

    #[test]
    fn parallel_spmm_is_bit_identical() {
        let a = random_csr(120, 80, 9);
        let b = random_csr(80, 60, 10);
        let serial = a.spmm(&b).unwrap();
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            let parallel = a.spmm_with(&b, threads).unwrap();
            assert_eq!(serial.indptr(), parallel.indptr(), "{threads:?}");
            assert_eq!(serial.indices(), parallel.indices(), "{threads:?}");
            assert_eq!(serial.values(), parallel.values(), "{threads:?}");
        }
        assert!(a.spmm_with(&a, Threads::Fixed(2)).is_err());
    }

    #[test]
    fn parallel_kernels_handle_empty_and_tiny_matrices() {
        let empty = CsrMatrix::zeros(0, 0);
        assert_eq!(
            empty
                .spmm_dense_with(&DenseMatrix::zeros(0, 3), Threads::Fixed(4))
                .unwrap()
                .shape(),
            (0, 3)
        );
        let one = CsrMatrix::identity(1);
        assert_eq!(one.spmv_with(&[2.0], Threads::Fixed(8)).unwrap(), vec![2.0]);
        let all_zero = CsrMatrix::zeros(6, 6);
        let x = random_dense(6, 2, 3);
        assert_eq!(
            all_zero
                .spmm_dense_with(&x, Threads::Fixed(3))
                .unwrap()
                .data(),
            all_zero.spmm_dense(&x).unwrap().data()
        );
    }

    /// A hub-heavy (power-law-ish) matrix: a few rows hold a large share of the
    /// entries, most rows hold 1–3, and every 11th row is empty.
    fn hub_heavy_csr(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut triplets = Vec::new();
        for r in 0..rows {
            let nnz = if r % 97 == 0 {
                cols / 2
            } else if r % 11 == 0 {
                0
            } else {
                1 + rng.gen_index(3)
            };
            for _ in 0..nnz {
                triplets.push((r, rng.gen_index(cols), 2.0 * rng.gen::<f64>() - 1.0));
            }
        }
        CsrMatrix::from_triplets(rows, cols, &triplets)
    }

    /// The blocked / monomorphized SpMM (k ≤ 8 takes a fixed-size-accumulator fast
    /// path, larger k the generic column-blocked loop) must be bit-identical to the
    /// scalar reference kernel for every k, thread count, and degree profile —
    /// including hub rows and empty rows.
    #[test]
    fn blocked_spmm_matches_reference_across_k_and_threads() {
        let matrices = [random_csr(301, 97, 5), hub_heavy_csr(500, 97, 13)];
        for m in &matrices {
            // Covers every dispatch arm: monomorphized (k ≤ 8), single-pass
            // streaming (9..=64), and the column-blocked fallback (k > 64).
            for k in [1usize, 2, 3, 5, 8, 17, 70] {
                let x = random_dense(m.cols(), k, 40 + k as u64);
                let reference = m.spmm_dense_reference(&x).unwrap();
                assert_eq!(
                    reference.data(),
                    m.spmm_dense(&x).unwrap().data(),
                    "serial blocked kernel diverged at k={k}"
                );
                for threads in [
                    Threads::Serial,
                    Threads::Fixed(2),
                    Threads::Fixed(4),
                    Threads::Auto,
                ] {
                    assert_eq!(
                        reference.data(),
                        m.spmm_dense_with(&x, threads).unwrap().data(),
                        "k={k} {threads:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn nnz_row_blocking_is_bit_identical() {
        let m = hub_heavy_csr(600, 150, 21);
        let x = random_dense(150, 3, 22);
        let expected = m.spmm_dense_reference(&x).unwrap();
        for blocking in [
            RowBlocking::Contiguous,
            RowBlocking::ByNnz(0),
            RowBlocking::ByNnz(1),
            RowBlocking::ByNnz(64),
            RowBlocking::ByNnz(usize::MAX / 2),
        ] {
            for threads in [Threads::Serial, Threads::Fixed(2), Threads::Fixed(4)] {
                let got = m.spmm_dense_blocked(&x, threads, blocking).unwrap();
                assert_eq!(expected.data(), got.data(), "{blocking:?} {threads:?}");
            }
        }
        assert!(m
            .spmm_dense_blocked(
                &DenseMatrix::zeros(3, 2),
                Threads::Serial,
                RowBlocking::ByNnz(8)
            )
            .is_err());
    }

    #[test]
    fn split_range_by_nnz_covers_range_without_splitting_rows() {
        let m = hub_heavy_csr(200, 80, 31);
        for target in [1usize, 16, 1000] {
            let blocks = split_range_by_nnz(m.indptr(), 10..180, target);
            assert_eq!(blocks.first().unwrap().start, 10);
            assert_eq!(blocks.last().unwrap().end, 180);
            for w in blocks.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            for b in &blocks {
                assert!(!b.is_empty());
                // A block only exceeds the target when a single row does.
                let nnz = m.indptr()[b.end] - m.indptr()[b.start];
                assert!(
                    nnz <= target || b.len() == 1 || {
                        let last_row = m.indptr()[b.end] - m.indptr()[b.end - 1];
                        nnz - last_row <= target
                    }
                );
            }
        }
        assert!(split_range_by_nnz(m.indptr(), 5..5, 16).is_empty());
        assert_eq!(split_range_by_nnz(m.indptr(), 0..7, 0), vec![0..7]);
    }

    #[test]
    fn spmm_dense_into_overwrites_reused_buffers() {
        let m = random_csr(157, 60, 17);
        let x = random_dense(60, 4, 18);
        let expected = m.spmm_dense(&x).unwrap();
        // A dirty buffer must be fully overwritten, at any thread count.
        for threads in [Threads::Serial, Threads::Fixed(3)] {
            let mut out = DenseMatrix::filled(157, 4, f64::NAN);
            m.spmm_dense_into(&x, threads, &mut out).unwrap();
            assert_eq!(expected.data(), out.data(), "{threads:?}");
        }
        // Shape mismatches on either operand are rejected.
        let mut wrong = DenseMatrix::zeros(10, 4);
        assert!(m.spmm_dense_into(&x, Threads::Serial, &mut wrong).is_err());
        let mut out = DenseMatrix::zeros(157, 4);
        assert!(m
            .spmm_dense_into(&DenseMatrix::zeros(3, 4), Threads::Serial, &mut out)
            .is_err());
    }

    #[test]
    fn map_row_chunks_runs_inline_for_single_range() {
        let mut out = vec![0.0; 8];
        let caller = std::thread::current().id();
        let single_range = partition_rows(4, 1);
        let ids = map_row_chunks(&mut out, 2, &single_range, |_, chunk| {
            chunk.fill(1.0);
            std::thread::current().id()
        });
        assert_eq!(ids, vec![caller]);
        assert_eq!(out, vec![1.0; 8]);
    }
}
