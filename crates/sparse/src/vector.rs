//! Small helpers for dense `f64` vectors.
//!
//! These are the handful of vector operations the estimation and propagation code needs
//! (norms, normalization, dot products, argmax). They operate on plain slices so callers
//! never need a wrapper type.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics in debug builds if the lengths differ; in release builds the shorter length wins.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean (L2) norm.
pub fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Maximum absolute value (L-infinity norm).
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |acc, x| acc.max(x.abs()))
}

/// Sum of entries.
pub fn sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

/// Normalize in place so the entries sum to 1. Leaves an all-zero vector unchanged.
pub fn normalize_l1(v: &mut [f64]) {
    let s = norm1(v);
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    }
}

/// Normalize in place to unit Euclidean norm. Leaves an all-zero vector unchanged.
pub fn normalize_l2(v: &mut [f64]) {
    let s = norm2(v);
    if s > 0.0 {
        for x in v.iter_mut() {
            *x /= s;
        }
    }
}

/// Element-wise `a - b` as a new vector.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Element-wise `a + b` as a new vector.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// `a + factor * b` as a new vector (axpy).
pub fn axpy(a: &[f64], factor: f64, b: &[f64]) -> Vec<f64> {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| x + factor * y)
        .collect()
}

/// Scale every entry by `factor`, returning a new vector.
pub fn scaled(v: &[f64], factor: f64) -> Vec<f64> {
    v.iter().map(|x| x * factor).collect()
}

/// Index of the maximum entry (ties resolved to the lowest index). Returns `None` for an
/// empty slice.
pub fn argmax(v: &[f64]) -> Option<usize> {
    if v.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_val = f64::NEG_INFINITY;
    for (i, &x) in v.iter().enumerate() {
        if x > best_val {
            best_val = x;
            best = i;
        }
    }
    Some(best)
}

/// Euclidean distance between two vectors.
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    norm2(&sub(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&[-1.0, 2.0]), 3.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn normalize_l1_sums_to_one() {
        let mut v = vec![1.0, 3.0];
        normalize_l1(&mut v);
        assert!((sum(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_l2_unit_norm() {
        let mut v = vec![3.0, 4.0];
        normalize_l2(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0];
        normalize_l2(&mut z);
        assert_eq!(z, vec![0.0]);
    }

    #[test]
    fn elementwise_ops() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(axpy(&[1.0, 1.0], 2.0, &[1.0, 2.0]), vec![3.0, 5.0]);
        assert_eq!(scaled(&[1.0, -2.0], -3.0), vec![-3.0, 6.0]);
    }

    #[test]
    fn argmax_behaviour() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), Some(1));
        assert_eq!(argmax(&[2.0, 2.0]), Some(0)); // ties to lowest index
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(distance(&a, &b), 5.0);
        assert_eq!(distance(&b, &a), 5.0);
    }
}
