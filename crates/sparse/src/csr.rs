//! Compressed sparse row (CSR) matrices.
//!
//! The adjacency matrix `W` of the input graph is the only large object in the whole
//! pipeline. Every kernel that touches it is written so intermediate results stay
//! `n x k` dense (never `n x n`): this is the "factorized" evaluation order the paper
//! relies on for scalability (Section 4.6, footnote 5).

use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use std::ops::Range;

/// Column-block width of the generic dense-RHS SpMM kernel: wide enough to fill a
/// 512-bit vector lane with f64s, small enough that the accumulator block stays in
/// registers. `k ≤ SPMM_COL_BLOCK` instead takes a fully monomorphized fast path.
const SPMM_COL_BLOCK: usize = 8;

/// Widest RHS the single-pass streaming SpMM kernel handles (output row ≤ 512
/// bytes — comfortably L1-resident). Beyond it, the column-blocked kernel re-reads
/// the row's entries once per block but keeps its accumulator in registers.
const SPMM_STREAM_MAX_K: usize = 64;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointer array of length `rows + 1`.
    indptr: Vec<usize>,
    /// Column indices, sorted within each row.
    indices: Vec<usize>,
    /// Non-zero values aligned with `indices`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Create an empty (all-zero) matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CsrMatrix {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Create the `n x n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Create a diagonal matrix from a vector of diagonal entries.
    /// Zero diagonal entries are not stored (they are dropped, not kept as explicit
    /// zeros), so `nnz()` counts only the non-zero diagonal values.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for (i, &d) in diag.iter().enumerate() {
            if d != 0.0 {
                indices.push(i);
                values.push(d);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: n,
            cols: n,
            indptr,
            indices,
            values,
        }
    }

    /// Build from (possibly duplicated, unsorted) triplets, summing duplicates and
    /// dropping entries that sum to exactly zero.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        // Count entries per row, then turn the counts into per-row scatter cursors
        // with an in-place exclusive prefix sum: one array serves as both, so no
        // separate indptr (and no clone of it) is ever built. After the scatter,
        // `next[r]` is the *end* of row bucket `r`, and each bucket starts where the
        // previous one ended.
        let mut next = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            next[r + 1] += 1;
        }
        for r in 0..rows {
            next[r + 1] += next[r];
        }
        // Scatter into row buckets.
        let mut col_buf = vec![0usize; triplets.len()];
        let mut val_buf = vec![0.0f64; triplets.len()];
        for &(r, c, v) in triplets {
            let pos = next[r];
            col_buf[pos] = c;
            val_buf[pos] = v;
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates.
        let mut out_indptr = Vec::with_capacity(rows + 1);
        let mut out_indices = Vec::with_capacity(triplets.len());
        let mut out_values = Vec::with_capacity(triplets.len());
        out_indptr.push(0);
        let mut row_entries: Vec<(usize, f64)> = Vec::new();
        let mut bucket_start = 0usize;
        for &bucket_end in &next[..rows] {
            row_entries.clear();
            for idx in bucket_start..bucket_end {
                row_entries.push((col_buf[idx], val_buf[idx]));
            }
            bucket_start = bucket_end;
            row_entries.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row_entries.len() {
                let col = row_entries[i].0;
                let mut sum = 0.0;
                while i < row_entries.len() && row_entries[i].0 == col {
                    sum += row_entries[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    out_indices.push(col);
                    out_values.push(sum);
                }
            }
            out_indptr.push(out_indices.len());
        }
        CsrMatrix {
            rows,
            cols,
            indptr: out_indptr,
            indices: out_indices,
            values: out_values,
        }
    }

    /// Build from a dense matrix, keeping only non-zero entries.
    pub fn from_dense(dense: &DenseMatrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..dense.rows() {
            for j in 0..dense.cols() {
                let v = dense.get(i, j);
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        Self::from_triplets(dense.rows(), dense.cols(), &triplets)
    }

    /// Crate-internal constructor for kernels that assemble already-valid CSR arrays
    /// (e.g. the thread-parallel product in [`crate::parallel`]). Callers guarantee the
    /// invariants [`CsrMatrix::from_raw`] would check.
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        debug_assert_eq!(*indptr.last().unwrap_or(&0), indices.len());
        CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Construct directly from raw CSR arrays. Validates monotone `indptr`, in-bounds
    /// column indices, and matching lengths.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::InvalidInput(format!(
                "indptr must have length rows+1 = {}, got {}",
                rows + 1,
                indptr.len()
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidInput(
                "indices and values must have the same length".into(),
            ));
        }
        if *indptr.last().unwrap_or(&0) != indices.len() {
            return Err(SparseError::InvalidInput(
                "last indptr entry must equal the number of stored values".into(),
            ));
        }
        if indptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(SparseError::InvalidInput(
                "indptr must be non-decreasing".into(),
            ));
        }
        if indices.iter().any(|&c| c >= cols) {
            return Err(SparseError::InvalidInput(
                "column index out of bounds".into(),
            ));
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of explicitly stored (non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column index array.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The stored columns and values of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let start = self.indptr[i];
        let end = self.indptr[i + 1];
        (&self.indices[start..end], &self.values[start..end])
    }

    /// Number of stored entries in row `i`.
    #[inline]
    pub fn row_nnz(&self, i: usize) -> usize {
        self.indptr[i + 1] - self.indptr[i]
    }

    /// Read the entry at `(i, j)` (zero when not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(pos) => vals[pos],
            Err(_) => 0.0,
        }
    }

    /// Iterate over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals.iter()).map(move |(&c, &v)| (i, c, v))
        })
    }

    /// Sum of the entries in each row (weighted node degrees for an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).1.iter().sum()).collect()
    }

    /// Diagonal entries as a vector.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Sparse-matrix x dense-matrix product: `self (rows x cols) * dense (cols x k)`.
    ///
    /// This is the workhorse of factorized path summation: cost `O(nnz * k)`.
    pub fn spmm_dense(&self, dense: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != dense.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "csr * dense",
                left: self.shape(),
                right: dense.shape(),
            });
        }
        let k = dense.cols();
        let mut out = DenseMatrix::zeros(self.rows, k);
        self.spmm_dense_rows_into(dense, 0..self.rows, out.data_mut());
        Ok(out)
    }

    /// The row kernel behind [`CsrMatrix::spmm_dense`]: write rows `rows` of
    /// `self * dense` into `out`, a buffer holding exactly those output rows
    /// (`rows.len() * dense.cols()` values). Every output value is overwritten, so
    /// callers may pass an unzeroed (reused) buffer. Shared by the serial entry point
    /// and the thread-parallel one in [`crate::parallel`], so both produce
    /// bit-identical results.
    ///
    /// `k = dense.cols()` is the class count in every hot caller, so it is small (the
    /// paper's experiments use k ≤ 8). The kernel monomorphizes k ∈ 1..=8 with a
    /// fixed-size accumulator array the compiler keeps in registers and can
    /// autovectorize; larger k falls back to a cache-blocked generic loop. Both paths
    /// accumulate each output element over the stored entries of its row in column
    /// order — exactly the order the pre-blocking scalar kernel used (kept as
    /// [`CsrMatrix::spmm_dense_reference`]) — so the results are bit-identical to it.
    pub(crate) fn spmm_dense_rows_into(
        &self,
        dense: &DenseMatrix,
        rows: Range<usize>,
        out: &mut [f64],
    ) {
        match dense.cols() {
            0 => {}
            1 => self.spmm_rows_fixed::<1>(dense, rows, out),
            2 => self.spmm_rows_fixed::<2>(dense, rows, out),
            3 => self.spmm_rows_fixed::<3>(dense, rows, out),
            4 => self.spmm_rows_fixed::<4>(dense, rows, out),
            5 => self.spmm_rows_fixed::<5>(dense, rows, out),
            6 => self.spmm_rows_fixed::<6>(dense, rows, out),
            7 => self.spmm_rows_fixed::<7>(dense, rows, out),
            8 => self.spmm_rows_fixed::<8>(dense, rows, out),
            k if k <= SPMM_STREAM_MAX_K => self.spmm_rows_streaming(dense, rows, out),
            _ => self.spmm_rows_blocked(dense, rows, out),
        }
    }

    /// Monomorphized SpMM row kernel for small `K = dense.cols()`: the K-wide output
    /// row accumulates in a fixed-size array (registers, unrolled / autovectorized)
    /// and is written out once per row. Each output element still sums its row's
    /// stored entries in column order, so the result is bit-identical to the scalar
    /// reference kernel.
    fn spmm_rows_fixed<const K: usize>(
        &self,
        dense: &DenseMatrix,
        rows: Range<usize>,
        out: &mut [f64],
    ) {
        debug_assert_eq!(dense.cols(), K);
        let data = dense.data();
        for (i, out_row) in rows.zip(out.chunks_exact_mut(K)) {
            let (cols, vals) = self.row(i);
            let mut acc = [0.0f64; K];
            for (&c, &w) in cols.iter().zip(vals.iter()) {
                let src = &data[c * K..c * K + K];
                for j in 0..K {
                    acc[j] += w * src[j];
                }
            }
            out_row.copy_from_slice(&acc);
        }
    }

    /// Single-pass SpMM row kernel for moderate `k` (9..=[`SPMM_STREAM_MAX_K`]): the
    /// output row (at most a few hundred bytes, resident in L1) is zeroed once and
    /// accumulated in place over one pass of the stored entries. Measured faster than
    /// the column-blocked loop in this range, where re-reading the row's indices and
    /// values once per column block costs more than it saves. Same per-element
    /// accumulation order as the reference, so bit-identical.
    fn spmm_rows_streaming(&self, dense: &DenseMatrix, rows: Range<usize>, out: &mut [f64]) {
        let k = dense.cols();
        for (i, out_row) in rows.zip(out.chunks_exact_mut(k)) {
            let (cols, vals) = self.row(i);
            out_row.fill(0.0);
            for (&c, &w) in cols.iter().zip(vals.iter()) {
                let src = dense.row(c);
                for (o, &s) in out_row.iter_mut().zip(src.iter()) {
                    *o += w * s;
                }
            }
        }
    }

    /// Generic cache-blocked SpMM row kernel for `k` beyond [`SPMM_STREAM_MAX_K`]:
    /// the output row is processed in [`SPMM_COL_BLOCK`]-wide column blocks, each
    /// accumulated in a fixed-size register block over the full stored row before
    /// moving to the next block, keeping the accumulator in registers when the output
    /// row itself outgrows L1 residency. Per output element the accumulation order
    /// over the stored entries is unchanged, so this too is bit-identical to the
    /// reference.
    fn spmm_rows_blocked(&self, dense: &DenseMatrix, rows: Range<usize>, out: &mut [f64]) {
        let k = dense.cols();
        let data = dense.data();
        for (i, out_row) in rows.zip(out.chunks_exact_mut(k)) {
            let (cols, vals) = self.row(i);
            let mut j0 = 0;
            while j0 < k {
                let width = (k - j0).min(SPMM_COL_BLOCK);
                let mut acc = [0.0f64; SPMM_COL_BLOCK];
                for (&c, &w) in cols.iter().zip(vals.iter()) {
                    let src = &data[c * k + j0..c * k + j0 + width];
                    for (a, &s) in acc[..width].iter_mut().zip(src.iter()) {
                        *a += w * s;
                    }
                }
                out_row[j0..j0 + width].copy_from_slice(&acc[..width]);
                j0 += width;
            }
        }
    }

    /// The pre-blocking scalar SpMM (one `out[j] += w * src[j]` triple loop). Kept as
    /// the correctness oracle for the blocked/monomorphized kernels — tests assert
    /// bit-identity against it — and as the baseline the kernel bench reports
    /// speedups over. Not part of the supported API.
    #[doc(hidden)]
    pub fn spmm_dense_reference(&self, dense: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != dense.rows() {
            return Err(SparseError::DimensionMismatch {
                op: "csr * dense",
                left: self.shape(),
                right: dense.shape(),
            });
        }
        let k = dense.cols();
        let mut out = DenseMatrix::zeros(self.rows, k);
        let buf = out.data_mut();
        for i in 0..self.rows {
            let (cols, vals) = self.row(i);
            let out_row = &mut buf[i * k..(i + 1) * k];
            for (&c, &w) in cols.iter().zip(vals.iter()) {
                let src = dense.row(c);
                for (o, &s) in out_row.iter_mut().zip(src.iter()) {
                    *o += w * s;
                }
            }
        }
        Ok(out)
    }

    /// Sparse matrix-vector product `self * v`.
    pub fn spmv(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(SparseError::DimensionMismatch {
                op: "csr * vector",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        self.spmv_rows_into(v, 0..self.rows, &mut out);
        Ok(out)
    }

    /// The row kernel behind [`CsrMatrix::spmv`]: write rows `rows` of `self * v` into
    /// `out`, a buffer holding exactly those output entries. Shared by the serial and
    /// thread-parallel entry points.
    pub(crate) fn spmv_rows_into(&self, v: &[f64], rows: Range<usize>, out: &mut [f64]) {
        for (o, i) in out.iter_mut().zip(rows) {
            let (cols, vals) = self.row(i);
            *o = cols.iter().zip(vals.iter()).map(|(&c, &w)| w * v[c]).sum();
        }
    }

    /// Sparse-sparse product `self * other`, returning a sparse result.
    ///
    /// Only used for the *unfactorized* baseline (explicit `W^ℓ`, Fig. 5b) and for small
    /// matrices; the factorized kernels never call this on the full graph repeatedly.
    pub fn spmm(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        if self.cols != other.rows {
            return Err(SparseError::DimensionMismatch {
                op: "csr * csr",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let (row_lens, indices, values) = self.spmm_rows(other, 0..self.rows);
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0);
        for len in row_lens {
            indptr.push(indptr.last().unwrap() + len);
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: other.cols,
            indptr,
            indices,
            values,
        })
    }

    /// The row kernel behind [`CsrMatrix::spmm`] (classic Gustavson's algorithm with a
    /// dense per-row accumulator): compute rows `rows` of `self * other`, returning the
    /// per-row entry counts plus the concatenated column indices and values. Shared by
    /// the serial and thread-parallel entry points; each row is computed independently,
    /// so per-range results concatenate into exactly the serial output.
    pub(crate) fn spmm_rows(
        &self,
        other: &CsrMatrix,
        rows: Range<usize>,
    ) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        let mut row_lens = Vec::with_capacity(rows.len());
        let mut indices: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        let mut accumulator = vec![0.0f64; other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for i in rows {
            let (cols, vals) = self.row(i);
            for (&c, &w) in cols.iter().zip(vals.iter()) {
                let (ocols, ovals) = other.row(c);
                for (&oc, &ov) in ocols.iter().zip(ovals.iter()) {
                    if accumulator[oc] == 0.0 {
                        touched.push(oc);
                    }
                    accumulator[oc] += w * ov;
                }
            }
            touched.sort_unstable();
            let before = indices.len();
            for &c in &touched {
                let v = accumulator[c];
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
                accumulator[c] = 0.0;
            }
            touched.clear();
            row_lens.push(indices.len() - before);
        }
        (row_lens, indices, values)
    }

    /// Element-wise sum `self + other` (sparse result).
    pub fn add(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        self.combine(other, "csr add", 1.0)
    }

    /// Element-wise difference `self - other` (sparse result).
    pub fn sub(&self, other: &CsrMatrix) -> Result<CsrMatrix> {
        self.combine(other, "csr sub", -1.0)
    }

    fn combine(&self, other: &CsrMatrix, op: &'static str, sign: f64) -> Result<CsrMatrix> {
        if self.shape() != other.shape() {
            return Err(SparseError::DimensionMismatch {
                op,
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut triplets = Vec::with_capacity(self.nnz() + other.nnz());
        triplets.extend(self.iter());
        triplets.extend(other.iter().map(|(r, c, v)| (r, c, sign * v)));
        Ok(CsrMatrix::from_triplets(self.rows, self.cols, &triplets))
    }

    /// Multiply every stored value by `factor`.
    pub fn scaled(&self, factor: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= factor;
        }
        out
    }

    /// Transpose into a new CSR matrix.
    ///
    /// Counting sort over the stored entries — `O(nnz + cols)`, no triplet buffer and
    /// no per-row comparison sort (the `from_triplets` round trip this replaced).
    /// Source rows are visited in order, so each transposed row receives its entries
    /// with strictly ascending column indices. Explicit zeros (possible via
    /// [`CsrMatrix::from_raw`]) are dropped, matching the previous behavior.
    pub fn transpose(&self) -> CsrMatrix {
        // `next[c + 1]` counts transposed row `c`; the prefix sum turns the array
        // into scatter cursors, and after the scatter a one-slot shift recovers the
        // row pointers (cursor `c` has advanced exactly to the end of row `c`).
        let mut next = vec![0usize; self.cols + 1];
        for (&c, &v) in self.indices.iter().zip(self.values.iter()) {
            if v != 0.0 {
                next[c + 1] += 1;
            }
        }
        for c in 0..self.cols {
            next[c + 1] += next[c];
        }
        let tnnz = next[self.cols];
        let mut t_indices = vec![0usize; tnnz];
        let mut t_values = vec![0.0f64; tnnz];
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                if v != 0.0 {
                    let pos = next[c];
                    t_indices[pos] = r;
                    t_values[pos] = v;
                    next[c] += 1;
                }
            }
        }
        for c in (1..=self.cols).rev() {
            next[c] = next[c - 1];
        }
        next[0] = 0;
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr: next,
            indices: t_indices,
            values: t_values,
        }
    }

    /// Whether the matrix is (numerically) symmetric.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.iter()
            .all(|(r, c, v)| (self.get(c, r) - v).abs() <= tol)
    }

    /// Sum of the entries in each column, computed in one pass over the stored
    /// entries (no transpose is materialized).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for (&c, &v) in self.indices.iter().zip(self.values.iter()) {
            sums[c] += v;
        }
        sums
    }

    /// Column-normalize: divide each entry by its column sum (used by random-walk
    /// methods, Eq. 3). Columns with zero sum are left as zero.
    pub fn column_normalized(&self) -> CsrMatrix {
        let col_sums = self.column_sums();
        let mut out = self.clone();
        for i in 0..out.rows {
            let start = out.indptr[i];
            let end = out.indptr[i + 1];
            for idx in start..end {
                let c = out.indices[idx];
                if col_sums[c] != 0.0 {
                    out.values[idx] /= col_sums[c];
                }
            }
        }
        out
    }

    /// Row-normalize: divide each entry by its row sum. Rows with zero sum stay zero.
    pub fn row_normalized(&self) -> CsrMatrix {
        let sums = self.row_sums();
        let mut out = self.clone();
        for (i, &s) in sums.iter().enumerate() {
            let start = out.indptr[i];
            let end = out.indptr[i + 1];
            if s != 0.0 {
                for idx in start..end {
                    out.values[idx] /= s;
                }
            }
        }
        out
    }

    /// Symmetric normalization `D^{-1/2} W D^{-1/2}` used by the harmonic/LGC family.
    pub fn symmetric_normalized(&self) -> CsrMatrix {
        let sums = self.row_sums();
        let inv_sqrt: Vec<f64> = sums
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 0.0 })
            .collect();
        let mut out = self.clone();
        for i in 0..out.rows {
            let start = out.indptr[i];
            let end = out.indptr[i + 1];
            for idx in start..end {
                let c = out.indices[idx];
                out.values[idx] *= inv_sqrt[i] * inv_sqrt[c];
            }
        }
        out
    }

    /// Convert to a dense matrix. Intended for tests and small matrices only.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.add_at(r, c, v);
        }
        out
    }

    /// Frobenius norm of the stored entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4-node path graph 0-1-2-3 adjacency.
    fn path_graph() -> CsrMatrix {
        CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
            ],
        )
    }

    #[test]
    fn zeros_has_no_entries() {
        let m = CsrMatrix::zeros(3, 4);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.get(2, 3), 0.0);
    }

    #[test]
    fn identity_diagonal() {
        let m = CsrMatrix::identity(3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 1), 1.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn from_diagonal_drops_zeros() {
        let m = CsrMatrix::from_diagonal(&[1.0, 0.0, 3.0]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(2, 2), 3.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn from_triplets_sums_and_sorts() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 3.0)]);
        assert_eq!(m.row(0).0, &[0, 2]);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn from_triplets_drops_cancelled_entries() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, -1.0)]);
        assert_eq!(m.nnz(), 0);
    }

    #[test]
    fn from_dense_roundtrip() {
        let d = DenseMatrix::from_rows(&[vec![0.0, 2.0], vec![3.0, 0.0]]).unwrap();
        let s = CsrMatrix::from_dense(&d);
        assert_eq!(s.nnz(), 2);
        assert!(s.to_dense().approx_eq(&d, 0.0));
    }

    #[test]
    fn from_raw_validation() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).is_ok());
        // wrong indptr length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // decreasing indptr
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
        // column out of bounds
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![5], vec![1.0]).is_err());
        // mismatched value length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 1], vec![0], vec![1.0, 2.0]).is_err());
        // last indptr wrong
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn spmv_matches_dense() {
        let w = path_graph();
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let got = w.spmv(&v).unwrap();
        let expected = w.to_dense().matvec(&v).unwrap();
        assert_eq!(got, expected);
        assert!(w.spmv(&[1.0]).is_err());
    }

    #[test]
    fn spmm_dense_matches_dense_matmul() {
        let w = path_graph();
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 0.0],
        ])
        .unwrap();
        let got = w.spmm_dense(&x).unwrap();
        let expected = w.to_dense().matmul(&x).unwrap();
        assert!(got.approx_eq(&expected, 1e-12));
        assert!(w.spmm_dense(&DenseMatrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn spmm_sparse_matches_dense() {
        let w = path_graph();
        let w2 = w.spmm(&w).unwrap();
        let expected = w.to_dense().matmul(&w.to_dense()).unwrap();
        assert!(w2.to_dense().approx_eq(&expected, 1e-12));
        // diagonal of W^2 is the degree
        assert_eq!(w2.get(0, 0), 1.0);
        assert_eq!(w2.get(1, 1), 2.0);
    }

    #[test]
    fn spmm_dimension_mismatch() {
        let a = CsrMatrix::zeros(2, 3);
        let b = CsrMatrix::zeros(2, 3);
        assert!(a.spmm(&b).is_err());
    }

    #[test]
    fn add_and_sub() {
        let w = path_graph();
        let sum = w.add(&w).unwrap();
        assert_eq!(sum.get(0, 1), 2.0);
        let diff = w.sub(&w).unwrap();
        assert_eq!(diff.nnz(), 0);
        assert!(w.add(&CsrMatrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn scaled_multiplies_values() {
        let w = path_graph().scaled(0.5);
        assert_eq!(w.get(0, 1), 0.5);
    }

    #[test]
    fn transpose_of_symmetric_is_equal() {
        let w = path_graph();
        assert_eq!(w.transpose().to_dense(), w.to_dense());
        assert!(w.is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(0.0));
        assert_eq!(asym.transpose().get(1, 0), 1.0);
    }

    #[test]
    fn row_sums_are_degrees() {
        let w = path_graph();
        assert_eq!(w.row_sums(), vec![1.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn diagonal_extraction() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 2, 1.0), (2, 2, 5.0)]);
        assert_eq!(m.diagonal(), vec![2.0, 0.0, 5.0]);
    }

    #[test]
    fn column_sums_match_transpose_row_sums() {
        let m =
            CsrMatrix::from_triplets(3, 4, &[(0, 1, 2.0), (1, 1, 3.0), (2, 0, 1.0), (2, 3, -4.0)]);
        assert_eq!(m.column_sums(), m.transpose().row_sums());
        assert_eq!(m.column_sums(), vec![1.0, 5.0, 0.0, -4.0]);
    }

    #[test]
    fn column_normalized_columns_sum_to_one() {
        let w = path_graph();
        let c = w.column_normalized();
        let col_sums = c.transpose().row_sums();
        for s in col_sums {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn row_normalized_rows_sum_to_one() {
        let w = path_graph();
        let r = w.row_normalized();
        for s in r.row_sums() {
            assert!((s - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn symmetric_normalized_stays_symmetric() {
        let w = path_graph();
        let s = w.symmetric_normalized();
        assert!(s.is_symmetric(1e-12));
        // entry (0,1) should be 1/sqrt(d0*d1) = 1/sqrt(2)
        assert!((s.get(0, 1) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn iter_visits_all_entries() {
        let w = path_graph();
        assert_eq!(w.iter().count(), 6);
        let total: f64 = w.iter().map(|(_, _, v)| v).sum();
        assert_eq!(total, 6.0);
    }

    #[test]
    fn frobenius_norm_counts_entries() {
        let w = path_graph();
        assert!((w.frobenius_norm() - 6.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn row_nnz_counts() {
        let w = path_graph();
        assert_eq!(w.row_nnz(0), 1);
        assert_eq!(w.row_nnz(1), 2);
    }
}
