//! Coordinate-format (triplet) builder for sparse matrices.
//!
//! Graphs are assembled edge-by-edge as `(row, col, value)` triplets and then converted
//! into the compressed sparse row (CSR) format used by all propagation and summarization
//! kernels.

use crate::csr::CsrMatrix;
use crate::error::{Result, SparseError};

/// A sparse matrix under construction, stored as unsorted `(row, col, value)` triplets.
///
/// Duplicate entries are summed when converting to CSR, which makes the builder
/// convenient for accumulating multigraph edge weights.
#[derive(Debug, Clone, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Create an empty builder for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Create an empty builder with pre-allocated capacity for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(nnz),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (before duplicate merging).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Append a triplet. Returns an error if the indices are out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<()> {
        if row >= self.rows {
            return Err(SparseError::IndexOutOfBounds {
                index: row,
                bound: self.rows,
            });
        }
        if col >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                index: col,
                bound: self.cols,
            });
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Append both `(i, j, value)` and `(j, i, value)`; convenient for undirected edges.
    pub fn push_symmetric(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        self.push(i, j, value)?;
        if i != j {
            self.push(j, i, value)?;
        }
        Ok(())
    }

    /// Iterate over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// Convert to CSR, summing duplicate entries and dropping explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 2, 2.0).unwrap();
        assert_eq!(coo.nnz(), 2);
        assert_eq!(coo.rows(), 3);
        assert_eq!(coo.cols(), 3);
    }

    #[test]
    fn push_out_of_bounds_row() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
    }

    #[test]
    fn push_out_of_bounds_col() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn push_symmetric_adds_both_directions() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 1, 1.0).unwrap();
        assert_eq!(coo.nnz(), 2);
        // self loop is stored only once
        coo.push_symmetric(2, 2, 1.0).unwrap();
        assert_eq!(coo.nnz(), 3);
    }

    #[test]
    fn to_csr_sums_duplicates() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 3.0);
        assert_eq!(csr.nnz(), 1);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut coo = CooMatrix::with_capacity(2, 2, 10);
        coo.push(1, 1, 4.0).unwrap();
        assert_eq!(coo.to_csr().get(1, 1), 4.0);
    }

    #[test]
    fn iter_yields_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.5).unwrap();
        let v: Vec<_> = coo.iter().cloned().collect();
        assert_eq!(v, vec![(0, 0, 1.5)]);
    }
}
