//! Spectral-radius estimation via power iteration.
//!
//! LinBP's convergence condition (Eq. 2 in the paper) requires `ρ(H̃) < 1 / ρ(W)`. The
//! paper computes `ρ(W)` with PyAMG's approximate eigenvalue routine; we use plain power
//! iteration, which converges quickly on graph adjacency matrices because their top
//! eigenvalue is well separated for the graphs of interest.

use crate::csr::CsrMatrix;
use crate::dense::DenseMatrix;
use crate::error::{Result, SparseError};
use crate::vector;

/// Default maximum number of power-iteration steps.
pub const DEFAULT_MAX_ITER: usize = 1000;
/// Default relative tolerance for convergence of the eigenvalue estimate.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Estimate the spectral radius (largest absolute eigenvalue) of a sparse square matrix
/// using power iteration on the original matrix.
///
/// For the symmetric, non-negative adjacency matrices used throughout this crate family
/// the dominant eigenvalue is real and positive, so power iteration converges to the
/// spectral radius. Returns `Ok(0.0)` for an all-zero matrix.
pub fn spectral_radius_sparse(m: &CsrMatrix, max_iter: usize, tol: f64) -> Result<f64> {
    if !m.is_square() {
        return Err(SparseError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    if n == 0 || m.nnz() == 0 {
        return Ok(0.0);
    }
    // Deterministic, mildly varying start vector to avoid starting orthogonal to the
    // dominant eigenvector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64 * 0.1).collect();
    vector::normalize_l2(&mut v);
    let mut lambda_prev = 0.0f64;
    for it in 0..max_iter {
        let mut w = m.spmv(&v)?;
        let norm = vector::norm2(&w);
        if norm == 0.0 {
            // v ended up in the null space; the dominant eigenvalue along this direction
            // is zero, which for a non-negative matrix means the spectral radius is 0.
            return Ok(0.0);
        }
        let lambda = norm;
        for x in w.iter_mut() {
            *x /= norm;
        }
        v = w;
        if it > 0 && (lambda - lambda_prev).abs() <= tol * lambda.max(1.0) {
            return Ok(lambda);
        }
        lambda_prev = lambda;
    }
    // Power iteration on a well-separated spectrum converges far earlier; if we get here
    // the estimate is still useful, so return it rather than fail hard.
    Ok(lambda_prev)
}

/// Estimate the spectral radius of a small dense square matrix via power iteration on
/// `|M|` (element-wise absolute values), which upper-bounds and — for the symmetric
/// compatibility matrices used here — equals the spectral radius.
pub fn spectral_radius_dense(m: &DenseMatrix, max_iter: usize, tol: f64) -> Result<f64> {
    if !m.is_square() {
        return Err(SparseError::NotSquare {
            rows: m.rows(),
            cols: m.cols(),
        });
    }
    let n = m.rows();
    if n == 0 {
        return Ok(0.0);
    }
    if m.max_abs() == 0.0 {
        return Ok(0.0);
    }
    // Power iteration estimates |lambda_max| of M itself by tracking the Rayleigh
    // quotient; for symmetric M (our compatibility matrices) this is exact.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64 * 0.2).collect();
    vector::normalize_l2(&mut v);
    let mut lambda_prev = 0.0f64;
    for it in 0..max_iter {
        let w = m.matvec(&v)?;
        let norm = vector::norm2(&w);
        if norm == 0.0 {
            return Ok(0.0);
        }
        let lambda = norm;
        v = w.iter().map(|x| x / norm).collect();
        if it > 0 && (lambda - lambda_prev).abs() <= tol * lambda.max(1.0) {
            return Ok(lambda);
        }
        lambda_prev = lambda;
    }
    Ok(lambda_prev)
}

/// Convenience wrapper using the default iteration budget and tolerance.
pub fn spectral_radius(m: &CsrMatrix) -> Result<f64> {
    spectral_radius_sparse(m, DEFAULT_MAX_ITER, DEFAULT_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectral_radius_of_identity_is_one() {
        let id = CsrMatrix::identity(5);
        let r = spectral_radius(&id).unwrap();
        assert!((r - 1.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_of_zero_matrix_is_zero() {
        let z = CsrMatrix::zeros(4, 4);
        assert_eq!(spectral_radius(&z).unwrap(), 0.0);
    }

    #[test]
    fn spectral_radius_of_scaled_identity() {
        let m = CsrMatrix::identity(3).scaled(2.5);
        let r = spectral_radius(&m).unwrap();
        assert!((r - 2.5).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_of_complete_graph() {
        // K_4 adjacency has top eigenvalue n-1 = 3.
        let mut triplets = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    triplets.push((i, j, 1.0));
                }
            }
        }
        let w = CsrMatrix::from_triplets(4, 4, &triplets);
        let r = spectral_radius(&w).unwrap();
        assert!((r - 3.0).abs() < 1e-6);
    }

    #[test]
    fn spectral_radius_of_path_graph() {
        // Path on 3 nodes: eigenvalues are {-sqrt(2), 0, sqrt(2)}.
        let w =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let r = spectral_radius(&w).unwrap();
        assert!((r - 2.0f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn non_square_rejected() {
        let m = CsrMatrix::zeros(2, 3);
        assert!(spectral_radius(&m).is_err());
        let d = DenseMatrix::zeros(2, 3);
        assert!(spectral_radius_dense(&d, 100, 1e-9).is_err());
    }

    #[test]
    fn dense_spectral_radius_doubly_stochastic_is_one() {
        // Symmetric doubly-stochastic matrices have spectral radius exactly 1.
        let h = DenseMatrix::from_rows(&[
            vec![0.2, 0.6, 0.2],
            vec![0.6, 0.2, 0.2],
            vec![0.2, 0.2, 0.6],
        ])
        .unwrap();
        let r = spectral_radius_dense(&h, 1000, 1e-12).unwrap();
        assert!((r - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dense_spectral_radius_zero_matrix() {
        let z = DenseMatrix::zeros(3, 3);
        assert_eq!(spectral_radius_dense(&z, 100, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn dense_spectral_radius_of_centered_matrix() {
        // The centered version of the h=8 matrix from the paper has spectral radius 0.7.
        let h = DenseMatrix::from_rows(&[
            vec![0.1, 0.8, 0.1],
            vec![0.8, 0.1, 0.1],
            vec![0.1, 0.1, 0.8],
        ])
        .unwrap();
        let centered = h.centered();
        let r = spectral_radius_dense(&centered, 2000, 1e-12).unwrap();
        assert!((r - 0.7).abs() < 1e-5, "got {r}");
    }
}
