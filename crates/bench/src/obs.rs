//! Observability-overhead micro-benchmarks, feeding the committed
//! `BENCH_obs.json` trajectory at the repository root.
//!
//! The `fg-obs` layer promises that the *disabled* path — the instrumentation
//! every kernel and pipeline stage now carries — costs one relaxed atomic load
//! per span. This bench pins that promise with numbers:
//!
//! 1. **Primitive costs** — nanoseconds per [`fg_obs::Span::enter`] with
//!    tracing off and on, per counter increment, and per histogram observation.
//! 2. **End-to-end classify** — median wall-clock of a full
//!    [`fg_core::Pipeline`] classify run with tracing off vs on, with the
//!    predictions asserted **byte-identical** between the two modes before
//!    anything is timed (a red bench run is a correctness failure).
//! 3. **Derived disabled-path overhead** — spans per classify run × disabled
//!    span cost ÷ classify wall-clock, expressed as a percentage. This figure
//!    is machine-stable (both numerator and denominator scale with the host),
//!    so [`run_obs_bench`] asserts it stays under
//!    [`DISABLED_OVERHEAD_LIMIT_PCT`] regardless of gating mode. The *measured*
//!    traced-vs-untraced delta is reported informationally; it is noise-prone
//!    on slow CI hosts, so CI floors only arm when `gating == "throughput"`
//!    (see [`crate::kernels::gating_mode`]).

use std::time::Instant;

use fg_core::prelude::*;
use fg_obs::{default_latency_buckets, MetricsRegistry, Span};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernels::{detected_cores, gating_mode};

/// Hard ceiling on the derived disabled-path overhead, in percent.
pub const DISABLED_OVERHEAD_LIMIT_PCT: f64 = 2.0;

/// Shape of one observability-bench run.
#[derive(Debug, Clone)]
pub struct ObsBenchConfig {
    /// Nodes in the synthetic classify graph.
    pub nodes: usize,
    /// Classes in the synthetic classify graph.
    pub classes: usize,
    /// Timed iterations per classify measurement.
    pub iters: usize,
    /// Loop length for the primitive-cost measurements.
    pub primitive_loops: usize,
}

impl ObsBenchConfig {
    /// The configuration behind the committed `BENCH_obs.json`.
    pub fn full() -> Self {
        ObsBenchConfig {
            nodes: 20_000,
            classes: 3,
            iters: 5,
            primitive_loops: 200_000,
        }
    }

    /// A seconds-scale configuration for CI smoke runs (`FG_BENCH_SMOKE=1`).
    pub fn smoke() -> Self {
        ObsBenchConfig {
            nodes: 2_000,
            classes: 3,
            iters: 2,
            primitive_loops: 20_000,
        }
    }
}

/// The observability-bench result.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Nanoseconds per `Span::enter` + drop with tracing disabled.
    pub span_disabled_ns: f64,
    /// Nanoseconds per `Span::enter` + drop while a capture is recording.
    pub span_enabled_ns: f64,
    /// Nanoseconds per counter increment.
    pub counter_inc_ns: f64,
    /// Nanoseconds per histogram observation.
    pub histogram_observe_ns: f64,
    /// Median seconds for a classify pipeline run with tracing off.
    pub classify_disabled_s: f64,
    /// Median seconds for the same run with tracing on.
    pub classify_traced_s: f64,
    /// Span records captured by one traced classify run.
    pub spans_per_run: usize,
    /// Derived disabled-path overhead: spans_per_run × span_disabled_ns over
    /// the untraced classify wall-clock, in percent.
    pub disabled_overhead_pct: f64,
    /// Measured traced-vs-untraced delta in percent (informational; noisy on
    /// loaded hosts, can legitimately be negative).
    pub measured_delta_pct: f64,
    /// Logical cores detected on the measuring host.
    pub cores: usize,
}

/// Time `loops` iterations of `f` and return the mean nanoseconds per call.
fn per_call_ns(loops: usize, mut f: impl FnMut()) -> f64 {
    let loops = loops.max(1);
    // One untimed warm-up pass.
    for _ in 0..loops.min(1_000) {
        f();
    }
    let start = Instant::now();
    for _ in 0..loops {
        f();
    }
    start.elapsed().as_nanos() as f64 / loops as f64
}

/// Assert two classify reports agree byte-for-byte on everything a client can
/// observe: predictions exactly, beliefs and the estimated `H` bitwise.
fn assert_outputs_identical(traced: &PipelineReport, plain: &PipelineReport) {
    assert_eq!(
        traced.outcome.predictions, plain.outcome.predictions,
        "tracing changed the predictions"
    );
    assert!(
        traced
            .outcome
            .beliefs
            .data()
            .iter()
            .zip(plain.outcome.beliefs.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "tracing changed the beliefs bitwise"
    );
    assert!(
        traced
            .estimated_h
            .data()
            .iter()
            .zip(plain.estimated_h.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "tracing changed the estimated H bitwise"
    );
}

/// Median of a list of per-iteration timings (seconds).
fn median_s(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    samples[samples.len() / 2]
}

/// Run every observability measurement: verify byte-identity, then time.
pub fn run_obs_bench(cfg: &ObsBenchConfig) -> fg_core::Result<ObsReport> {
    // Primitive costs. No capture may be active here, or the "disabled" numbers
    // would silently measure the enabled path.
    drop(fg_obs::finish_capture());
    assert!(!fg_obs::tracing_enabled(), "a stray capture is active");
    let span_disabled_ns = per_call_ns(cfg.primitive_loops, || {
        let _span = Span::enter("bench_probe");
    });
    fg_obs::start_capture();
    // Bound the loop so the collector's record cap is never the thing measured.
    let enabled_loops = cfg.primitive_loops.min(100_000);
    let span_enabled_ns = per_call_ns(enabled_loops, || {
        let _span = Span::enter("bench_probe");
    });
    drop(fg_obs::finish_capture());

    let registry = MetricsRegistry::new();
    let counter = registry.counter("fg_bench_probe_total", "bench probe", &[]);
    let counter_inc_ns = per_call_ns(cfg.primitive_loops, || counter.inc());
    let histogram = registry.histogram(
        "fg_bench_probe_seconds",
        "bench probe",
        &[],
        default_latency_buckets(),
    );
    let histogram_observe_ns = per_call_ns(cfg.primitive_loops, || histogram.observe(0.000_42));

    // End-to-end classify: same graph, same seeds, tracing off vs on.
    let gen = GeneratorConfig::balanced(cfg.nodes, 5.0, cfg.classes, 8.0)?;
    let mut rng = StdRng::seed_from_u64(7);
    let syn = generate(&gen, &mut rng)?;
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    let classify = |trace: bool| -> fg_core::Result<PipelineReport> {
        Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DistantCompatibilityEstimation::default())
            .trace(trace)
            .run()
    };

    // The oracle runs before any timing: tracing must not change the answer.
    let plain = classify(false)?;
    let traced = classify(true)?;
    assert_outputs_identical(&traced, &plain);
    let trace = traced.trace.as_ref().expect("traced run carries a trace");
    let spans_per_run = trace.len();
    assert!(spans_per_run > 0, "traced classify captured no spans");

    let mut disabled: Vec<f64> = Vec::with_capacity(cfg.iters);
    let mut enabled: Vec<f64> = Vec::with_capacity(cfg.iters);
    for _ in 0..cfg.iters.max(1) {
        let start = Instant::now();
        std::hint::black_box(classify(false)?);
        disabled.push(start.elapsed().as_secs_f64());
        let start = Instant::now();
        std::hint::black_box(classify(true)?);
        enabled.push(start.elapsed().as_secs_f64());
    }
    let classify_disabled_s = median_s(&mut disabled);
    let classify_traced_s = median_s(&mut enabled);

    let disabled_overhead_pct =
        spans_per_run as f64 * span_disabled_ns / (classify_disabled_s * 1e9) * 100.0;
    let measured_delta_pct =
        (classify_traced_s - classify_disabled_s) / classify_disabled_s * 100.0;
    assert!(
        disabled_overhead_pct < DISABLED_OVERHEAD_LIMIT_PCT,
        "disabled-path overhead {disabled_overhead_pct:.4}% breaches the \
         {DISABLED_OVERHEAD_LIMIT_PCT}% ceiling"
    );

    Ok(ObsReport {
        span_disabled_ns,
        span_enabled_ns,
        counter_inc_ns,
        histogram_observe_ns,
        classify_disabled_s,
        classify_traced_s,
        spans_per_run,
        disabled_overhead_pct,
        measured_delta_pct,
        cores: detected_cores(),
    })
}

/// Render the committed `BENCH_obs.json` report.
pub fn render_obs_report(cfg: &ObsBenchConfig, report: &ObsReport) -> String {
    let gating = gating_mode(report.cores);
    let mut out = String::from("{\n  \"bench\": \"obs\",\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"cores\": {}}},\n  \"gating\": \"{}\",\n",
        report.cores, gating
    ));
    out.push_str(&format!(
        "  \"note\": \"{}\",\n",
        if gating == "structure" {
            "measured on a host with fewer than 4 cores: the measured traced-vs-untraced \
             delta is noise-prone, CI gates report structure and the derived \
             disabled-path overhead only"
        } else {
            "measured on a multi-core host: CI additionally bounds the measured \
             traced-vs-untraced delta"
        }
    ));
    out.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"classes\": {}, \"iters\": {}, \"primitive_loops\": {}}},\n",
        cfg.nodes, cfg.classes, cfg.iters, cfg.primitive_loops
    ));
    out.push_str(&format!(
        "  \"primitives\": {{\"span_disabled_ns\": {:.2}, \"span_enabled_ns\": {:.2}, \"counter_inc_ns\": {:.2}, \"histogram_observe_ns\": {:.2}}},\n",
        report.span_disabled_ns,
        report.span_enabled_ns,
        report.counter_inc_ns,
        report.histogram_observe_ns
    ));
    out.push_str(&format!(
        "  \"classify\": {{\"disabled_s\": {:.6}, \"traced_s\": {:.6}, \"spans_per_run\": {}}},\n",
        report.classify_disabled_s, report.classify_traced_s, report.spans_per_run
    ));
    out.push_str(&format!(
        "  \"disabled_overhead_pct\": {:.4},\n  \"disabled_overhead_limit_pct\": {:.1},\n  \"measured_delta_pct\": {:.2}\n}}\n",
        report.disabled_overhead_pct, DISABLED_OVERHEAD_LIMIT_PCT, report.measured_delta_pct
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_renders_parseable_json() {
        let cfg = ObsBenchConfig::smoke();
        let report = ObsReport {
            span_disabled_ns: 1.5,
            span_enabled_ns: 40.0,
            counter_inc_ns: 2.0,
            histogram_observe_ns: 9.0,
            classify_disabled_s: 0.12,
            classify_traced_s: 0.121,
            spans_per_run: 37,
            disabled_overhead_pct: 0.0001,
            measured_delta_pct: 0.83,
            cores: 1,
        };
        let rendered = render_obs_report(&cfg, &report);
        let parsed = fg_serve::Json::parse(&rendered).expect("report must be valid JSON");
        assert_eq!(
            parsed.get("bench").and_then(fg_serve::Json::as_str),
            Some("obs")
        );
        assert_eq!(
            parsed.get("gating").and_then(fg_serve::Json::as_str),
            Some("structure")
        );
        assert_eq!(
            parsed
                .get("classify")
                .and_then(|c| c.get("spans_per_run"))
                .and_then(fg_serve::Json::as_usize),
            Some(37)
        );
        assert!(parsed.get("disabled_overhead_pct").is_some());
        assert!(parsed.get("primitives").is_some());
    }

    #[test]
    fn smoke_bench_passes_its_byte_identity_oracle() {
        let cfg = ObsBenchConfig {
            nodes: 600,
            classes: 3,
            iters: 1,
            primitive_loops: 2_000,
        };
        let report = run_obs_bench(&cfg).expect("obs bench");
        assert!(report.spans_per_run > 0);
        assert!(report.span_disabled_ns > 0.0);
        assert!(report.disabled_overhead_pct < DISABLED_OVERHEAD_LIMIT_PCT);
    }
}
