//! Fig. 10 (Example C.1): propagating with the uncentered `H` can diverge in magnitude
//! while the centered residual version converges — yet the argmax labels agree at every
//! iteration. We track the belief magnitudes and the label agreement per iteration.

use fg_bench::ExperimentTable;
use fg_core::prelude::*;
use fg_propagation::convergence_epsilon;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The h = 8 compatibility matrix of Example C.1.
    let h = CompatibilityMatrix::from_rows(&[
        vec![0.1, 0.8, 0.1],
        vec![0.8, 0.1, 0.1],
        vec![0.1, 0.1, 0.8],
    ])
    .expect("valid H");
    let config = GeneratorConfig::balanced(1_000, 10.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(83);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
    println!("fig10: centered vs uncentered LinBP on the Example C.1 matrix");

    // Scaling chosen so the centered version sits at s = 0.95 of the convergence
    // boundary; the same epsilon puts the uncentered version slightly above it.
    let eps = convergence_epsilon(&syn.graph, h.as_dense(), 0.95).expect("epsilon");

    let mut table = ExperimentTable::new(
        "fig10_convergence",
        &[
            "iteration",
            "max_abs_centered",
            "max_abs_uncentered",
            "label_agreement",
        ],
    );
    for iterations in [1usize, 2, 4, 8, 12, 16, 20, 25, 30] {
        let base = LinBpConfig {
            explicit_epsilon: Some(eps),
            tolerance: None,
            max_iterations: iterations,
            ..LinBpConfig::default()
        };
        let centered = propagate(
            &syn.graph,
            &seeds,
            h.as_dense(),
            &LinBpConfig {
                centered: true,
                ..base.clone()
            },
        )
        .expect("centered propagation");
        let uncentered = propagate(
            &syn.graph,
            &seeds,
            h.as_dense(),
            &LinBpConfig {
                centered: false,
                ..base
            },
        )
        .expect("uncentered propagation");
        let agreement = centered
            .predictions
            .iter()
            .zip(uncentered.predictions.iter())
            .filter(|(a, b)| a == b)
            .count() as f64
            / centered.predictions.len() as f64;
        table.push_row(vec![
            iterations.to_string(),
            format!("{:.3e}", centered.beliefs.max_abs()),
            format!("{:.3e}", uncentered.beliefs.max_abs()),
            format!("{agreement:.3}"),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 10): the uncentered belief magnitudes grow");
    println!("without bound while the centered ones stay bounded, yet the per-iteration");
    println!("label agreement stays at (or extremely close to) 1.0 — Theorem 3.1 in action.");
}
