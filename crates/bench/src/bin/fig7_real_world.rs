//! Fig. 7a–h and Fig. 7i–p: end-to-end accuracy vs label sparsity on substitutes of the
//! 8 real-world datasets, plus their gold-standard compatibility matrices.
//!
//! Usage:
//!   cargo run --release --bin fig7_real_world                # all datasets, accuracy curves
//!   cargo run --release --bin fig7_real_world -- Cora        # a single dataset
//!   cargo run --release --bin fig7_real_world -- --matrices  # print the GS matrices (Fig. 7i-p)
//!
//! Dataset substitutes are scaled down by default (`FG_DATASET_SCALE`, default 0.05 for
//! the small graphs and 0.002 for Pokec/Flickr) so the full sweep finishes in minutes.

use fg_bench::{accuracy_vs_sparsity, outcomes_to_table, EstimatorKind};
use fg_datasets::{synthesize, DatasetId};

fn dataset_scale(id: DatasetId) -> f64 {
    let base = std::env::var("FG_DATASET_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    match id {
        DatasetId::Cora | DatasetId::Citeseer => base.unwrap_or(1.0),
        DatasetId::PokecGender | DatasetId::Flickr => base.unwrap_or(0.002),
        _ => base.unwrap_or(0.05),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let matrices_only = args.iter().any(|a| a == "--matrices");
    let requested: Vec<DatasetId> = args.iter().filter_map(|a| DatasetId::parse(a)).collect();
    let datasets = if requested.is_empty() {
        DatasetId::all().to_vec()
    } else {
        requested
    };

    for id in datasets {
        let instance = synthesize(id, dataset_scale(id), 7).expect("dataset synthesis");
        println!(
            "\n### {} (substitute: n = {}, m = {}, k = {}, d = {:.1})",
            id.name(),
            instance.graph.num_nodes(),
            instance.graph.num_edges(),
            instance.spec.k,
            instance.graph.average_degree()
        );

        if matrices_only {
            let gs = instance.measured_gold_standard().expect("gold standard");
            println!("gold-standard compatibilities (measured on the substitute):");
            for i in 0..gs.rows() {
                let row: Vec<String> = gs.row(i).iter().map(|v| format!("{v:5.2}")).collect();
                println!("  [{}]", row.join(", "));
            }
            continue;
        }

        let fractions = [0.001, 0.01, 0.1, 0.5];
        let kinds = EstimatorKind::standard_set();
        let outcomes = accuracy_vs_sparsity(
            &instance.graph,
            &instance.labeling,
            &fractions,
            &kinds,
            2,
            23,
        )
        .expect("sweep succeeds");
        let table = outcomes_to_table(
            &format!("fig7_{}", id.name().to_lowercase().replace('-', "_")),
            &outcomes,
            &kinds,
            |o| o.accuracy,
        );
        table.print_and_save();
    }
    if !matrices_only {
        println!("\nExpected shape (paper Fig. 7): DCEr stays within ±0.01-0.03 of GS across");
        println!("datasets and sparsity levels; MCE/LCE only compete when labels are dense.");
    }
}
