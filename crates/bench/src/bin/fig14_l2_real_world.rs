//! Fig. 14: L2 distance between the estimated compatibility matrices and the measured
//! gold standard on the 8 real-world dataset substitutes, as a function of the label
//! fraction.

use fg_bench::{l2_vs_sparsity, outcomes_to_table, EstimatorKind};
use fg_datasets::{synthesize, DatasetId};

fn main() {
    println!("fig14: L2 distance from the gold standard on the dataset substitutes");
    let kinds = [
        EstimatorKind::Lce,
        EstimatorKind::Mce,
        EstimatorKind::Dce,
        EstimatorKind::Dcer,
    ];
    let fractions = [0.001, 0.01, 0.1, 0.5];
    for id in DatasetId::all() {
        let scale = match id {
            DatasetId::Cora | DatasetId::Citeseer => 1.0,
            DatasetId::PokecGender | DatasetId::Flickr => 0.002,
            _ => 0.05,
        };
        let instance = synthesize(id, scale, 51).expect("synthesis");
        println!(
            "\n### {} (substitute: n = {}, m = {})",
            id.name(),
            instance.graph.num_nodes(),
            instance.graph.num_edges()
        );
        let outcomes = l2_vs_sparsity(
            &instance.graph,
            &instance.labeling,
            &fractions,
            &kinds,
            2,
            37,
        )
        .expect("sweep succeeds");
        let table = outcomes_to_table(
            &format!("fig14_l2_{}", id.name().to_lowercase().replace('-', "_")),
            &outcomes,
            &kinds,
            |o| o.l2_error.unwrap_or(f64::NAN),
        );
        table.print_and_save();
    }
    println!("\nExpected shape (paper Fig. 14): DCEr gives the smallest (or near-smallest)");
    println!("L2 distance at sparse labelings on nearly every dataset; MCE and LCE need");
    println!("much denser labels to close the gap.");
}
