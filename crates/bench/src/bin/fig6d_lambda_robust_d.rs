//! Fig. 6d: the optimal scaling factor λ as a function of the average degree `d`
//! (n = 10k, h = 8, f = 0.1).
//!
//! Same message as Fig. 6c along the degree axis: λ = 10 stays within roughly 10% of
//! the optimal choice across a wide range of degrees.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{DceConfig, DceWithRestarts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    println!("fig6d: optimal lambda vs average degree (n = {n}, h = 8, f = 0.1)");

    let degrees = [3.0, 5.0, 10.0, 30.0, 100.0];
    let lambdas = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];

    let mut table = ExperimentTable::new(
        "fig6d_lambda_robust_d",
        &["d", "best_lambda", "best_L2", "L2_at_lambda10"],
    );
    for (di, &d) in degrees.iter().enumerate() {
        let config = GeneratorConfig::balanced(n, d, 3, 8.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(29 + di as u64);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");
        let seeds = syn.labeling.stratified_sample(0.1, &mut rng);

        let mut best = (f64::NAN, f64::INFINITY);
        let mut at_ten = f64::NAN;
        for &lambda in &lambdas {
            let est = DceWithRestarts::new(DceConfig::new(5, lambda), 10);
            let h = est.estimate(&syn.graph, &seeds).expect("estimation");
            let err = gold.frobenius_distance(&h).expect("distance");
            if err < best.1 {
                best = (lambda, err);
            }
            if (lambda - 10.0).abs() < 1e-9 {
                at_ten = err;
            }
        }
        table.push_row(vec![
            format!("{d}"),
            format!("{}", best.0),
            format!("{:.4}", best.1),
            format!("{:.4}", at_ten),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6d): lambda = 10 remains a near-optimal choice");
    println!("for every average degree tested (3 to 100).");
}
