//! Fig. 6h: relative accuracy of DCEr as a function of the number of restarts `r`, for
//! k = 3..7 (n = 10k, d = 15, h = 8, f = 0.09), normalized by the "global minimum"
//! baseline obtained by initializing the optimization at the gold standard.
//!
//! The paper's conclusion: r = 10 restarts reach the global-minimum accuracy.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{
    matrix_to_free, summarize, DceConfig, DceWithRestarts, DistantCompatibilityEstimation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    println!("fig6h: DCEr restarts (n = {n}, d = 15, h = 8, f = 0.09)");
    let restart_counts = [1usize, 2, 3, 4, 5, 10];
    let mut headers: Vec<String> = vec!["k".into()];
    headers.extend(restart_counts.iter().map(|r| format!("r{r}_rel_acc")));
    let mut table = ExperimentTable {
        name: "fig6h_restarts".into(),
        headers,
        rows: Vec::new(),
    };

    for k in 3..=7usize {
        let config = GeneratorConfig::balanced(n, 15.0, k, 8.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(51 + k as u64);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let seeds = syn.labeling.stratified_sample(0.09, &mut rng);
        let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");

        // Global-minimum baseline: start the DCE optimization from the gold standard.
        let dce = DistantCompatibilityEstimation::default();
        let summary = summarize(&syn.graph, &seeds, &dce.config.summary_config()).expect("summary");
        let gs_start = matrix_to_free(&gold).expect("free parameters of GS");
        let (global_h, _) = dce
            .estimate_from_summary_with_start(&summary, &gs_start)
            .expect("global-minimum run");
        let global_acc = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .compatibilities("global", &global_h)
            .run()
            .expect("propagation")
            .accuracy(&syn.labeling, &seeds);

        let mut row = vec![k.to_string()];
        for &r in &restart_counts {
            let est = DceWithRestarts::new(DceConfig::default(), r);
            let (h, _) = est.estimate_from_summary(&summary).expect("DCEr");
            let acc = Pipeline::on(&syn.graph)
                .seeds(&seeds)
                .compatibilities(format!("DCEr(r={r})"), &h)
                .run()
                .expect("propagation")
                .accuracy(&syn.labeling, &seeds);
            let relative = if global_acc > 0.0 {
                acc / global_acc
            } else {
                f64::NAN
            };
            row.push(format!("{relative:.3}"));
        }
        table.push_row(row);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6h): relative accuracy rises with the number of");
    println!("restarts and reaches ~1.0 (the global-minimum baseline) by r = 10; higher k");
    println!("needs more restarts than k = 3.");
}
