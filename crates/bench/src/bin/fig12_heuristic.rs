//! Fig. 12 (Appendix E.1): the two-value H/L heuristic vs estimation on the MovieLens
//! and Prop-37 substitutes.
//!
//! The paper's finding: when the true compatibilities really take only two levels
//! (MovieLens), a well-guessed heuristic performs about as well as estimation; when they
//! do not (Prop-37), the heuristic collapses to near-random while DCEr stays at GS level.

use fg_bench::{accuracy_vs_sparsity, outcomes_to_table, EstimatorKind};
use fg_datasets::{synthesize, DatasetId};

fn main() {
    println!("fig12: two-value heuristic vs estimation (MovieLens and Prop-37 substitutes)");
    let kinds = [
        EstimatorKind::GoldStandard,
        EstimatorKind::Mce,
        EstimatorKind::Dce,
        EstimatorKind::Dcer,
        EstimatorKind::Heuristic,
    ];
    let fractions = [0.001, 0.01, 0.1, 0.5];
    for id in [DatasetId::MovieLens, DatasetId::Prop37] {
        let instance = synthesize(id, 0.05, 41).expect("synthesis");
        println!(
            "\n### {} (substitute: n = {}, m = {})",
            id.name(),
            instance.graph.num_nodes(),
            instance.graph.num_edges()
        );
        let outcomes = accuracy_vs_sparsity(
            &instance.graph,
            &instance.labeling,
            &fractions,
            &kinds,
            2,
            29,
        )
        .expect("sweep succeeds");
        let table = outcomes_to_table(
            &format!(
                "fig12_heuristic_{}",
                id.name().to_lowercase().replace('-', "_")
            ),
            &outcomes,
            &kinds,
            |o| o.accuracy,
        );
        table.print_and_save();
    }
    println!("\nExpected shape (paper Fig. 12): on MovieLens the heuristic is competitive");
    println!("with GS/DCEr; on Prop-37 (whose compatibilities are not two-valued) the");
    println!("heuristic falls well below DCEr.");
}
