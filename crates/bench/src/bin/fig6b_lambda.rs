//! Fig. 6b: L2 distance of the DCEr estimate from the gold standard as a function of the
//! scaling factor λ and the maximum path length ℓmax, in the extremely sparse regime
//! (n = 10k, d = 25, h = 8, f = 0.001).
//!
//! The paper's observation: ℓmax = 1 (i.e. MCE) cannot recover H at this sparsity,
//! longer paths can, and λ ≈ 10 is a robust choice.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{DceConfig, DceWithRestarts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 25.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(19);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");
    println!(
        "fig6b: DCEr L2 vs lambda and lmax (n = {}, d = 25, h = 8, f = 0.001)",
        syn.graph.num_nodes()
    );

    let lambdas = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];
    let lmaxes = [1usize, 2, 3, 4, 5];
    let repetitions = 3;

    let mut headers = vec!["lambda".to_string()];
    headers.extend(lmaxes.iter().map(|l| format!("lmax{l}_L2")));
    let mut table = ExperimentTable {
        name: "fig6b_lambda".into(),
        headers,
        rows: Vec::new(),
    };

    for &lambda in &lambdas {
        let mut row = vec![format!("{lambda}")];
        for &lmax in &lmaxes {
            let mut total = 0.0;
            for rep in 0..repetitions {
                let mut sample_rng = StdRng::seed_from_u64(500 + rep);
                let seeds = syn.labeling.stratified_sample(0.001, &mut sample_rng);
                let est = DceWithRestarts::new(DceConfig::new(lmax, lambda), 10);
                let h = est.estimate(&syn.graph, &seeds).expect("estimation");
                total += gold.frobenius_distance(&h).expect("distance");
            }
            row.push(format!("{:.4}", total / repetitions as f64));
        }
        table.push_row(row);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6b): lmax = 1 stays near the uninformative");
    println!("error regardless of lambda; lmax = 5 with lambda around 10 gives the");
    println!("lowest L2 norm; even lmax (2, 4) is weaker than odd/longer lengths.");
}
