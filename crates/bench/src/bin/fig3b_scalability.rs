//! Fig. 3b / Fig. 6k: estimation and propagation time as the number of edges `m` grows
//! (d = 5, h = 8, f = 0.01). The paper's headline: DCEr estimates compatibilities on a
//! 16.4M-edge graph in 11 s — 28x faster than propagation and 3–4 orders of magnitude
//! faster than the Holdout baseline.
//!
//! Absolute times differ on other hardware; the *shape* to check is (1) all estimators
//! scale linearly in m, (2) MCE < DCE ≈ DCEr < LCE < propagation < Holdout.

use fg_bench::{scale_factor, time_it, ExperimentTable};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Node counts chosen so m = 2.5 n spans ~2.5 orders of magnitude by default.
    let scale = scale_factor();
    let sizes: Vec<usize> = [2_000usize, 10_000, 50_000, 200_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(500))
        .collect();
    let with_holdout = std::env::var("FG_WITH_HOLDOUT").as_deref() == Ok("1");

    let mut table = ExperimentTable::new(
        "fig3b_scalability",
        &[
            "n",
            "m",
            "MCE_s",
            "LCE_s",
            "DCE_s",
            "DCEr_s",
            "Propagation_s",
            "Holdout_s",
        ],
    );

    for &n in &sizes {
        let config = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let seeds = syn.labeling.stratified_sample(0.01, &mut rng);

        let (_, mce_t) = time_it(|| {
            MyopicCompatibilityEstimation::default()
                .estimate(&syn.graph, &seeds)
                .expect("MCE")
        });
        let (_, lce_t) = time_it(|| {
            LinearCompatibilityEstimation::default()
                .estimate(&syn.graph, &seeds)
                .expect("LCE")
        });
        let (_, dce_t) = time_it(|| {
            DistantCompatibilityEstimation::default()
                .estimate(&syn.graph, &seeds)
                .expect("DCE")
        });
        let (dcer_h, dcer_t) = time_it(|| {
            DceWithRestarts::default()
                .estimate(&syn.graph, &seeds)
                .expect("DCEr")
        });
        let (_, prop_t) = time_it(|| {
            propagate(
                &syn.graph,
                &seeds,
                &dcer_h,
                &LinBpConfig {
                    max_iterations: 10,
                    tolerance: None,
                    ..LinBpConfig::default()
                },
            )
            .expect("propagation")
        });
        let holdout_t = if with_holdout && n <= 10_000 {
            let (_, t) = time_it(|| {
                HoldoutEstimation::default()
                    .estimate(&syn.graph, &seeds)
                    .expect("Holdout")
            });
            format!("{:.3}", t.as_secs_f64())
        } else {
            "-".to_string()
        };

        table.push_row(vec![
            n.to_string(),
            syn.graph.num_edges().to_string(),
            format!("{:.3}", mce_t.as_secs_f64()),
            format!("{:.3}", lce_t.as_secs_f64()),
            format!("{:.3}", dce_t.as_secs_f64()),
            format!("{:.3}", dcer_t.as_secs_f64()),
            format!("{:.3}", prop_t.as_secs_f64()),
            holdout_t,
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 3b/6k): every estimator scales linearly in m;");
    println!("MCE is cheapest, DCE and DCEr coincide for large m (the summarization");
    println!("dominates), LCE is noticeably slower, and 10-iteration propagation costs");
    println!("more than DCEr. Holdout (enable with FG_WITH_HOLDOUT=1) is orders of");
    println!("magnitude slower still.");
}
