//! Fig. 5b (Example 4.6): cost of explicit adjacency powers `Wℓ` vs the factorized
//! computation of `P̂(ℓ)_NB`, plus the serial-vs-parallel cost of the factorized
//! summarization itself (`summarize_with` at 4 threads; bit-identical output).
//!
//! The paper reports three orders of magnitude speed-up at ℓ = 5 and that the factorized
//! path summaries over > 10^14 paths take < 0.1 s on a 100k-edge graph.

use fg_bench::{scaled_n, time_it, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{explicit_adjacency_power, summarize, summarize_with, SummaryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 20.0, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(13);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    println!(
        "fig5b: explicit W^l vs factorized P_NB (n = {}, m = {}, d = 20)",
        syn.graph.num_nodes(),
        syn.graph.num_edges()
    );

    // Explicit powers explode in density; cap the length to keep the baseline tractable.
    let explicit_cap: usize = std::env::var("FG_EXPLICIT_MAX_L")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let max_length = 8;

    let mut table = ExperimentTable::new(
        "fig5b_factorized_time",
        &[
            "l",
            "explicit_W^l_s",
            "explicit_nnz",
            "factorized_P_NB_s",
            "factorized_par4_s",
        ],
    );
    for ell in 1..=max_length {
        let (explicit_time, nnz) = if ell <= explicit_cap {
            let (power, t) = time_it(|| explicit_adjacency_power(&syn.graph, ell).expect("W^l"));
            (format!("{:.4}", t.as_secs_f64()), power.nnz().to_string())
        } else {
            ("-".to_string(), "-".to_string())
        };
        let config = SummaryConfig::with_max_length(ell);
        let (serial_summary, factorized_time) =
            time_it(|| summarize(&syn.graph, &seeds, &config).expect("summary"));
        let (parallel_summary, parallel_time) = time_it(|| {
            summarize_with(&syn.graph, &seeds, &config, Threads::Fixed(4)).expect("summary")
        });
        // The parallel kernels are bit-identical to the serial ones; keep the
        // invariant visible in the figure binary itself.
        for l in 1..=ell {
            assert_eq!(
                serial_summary.statistic(l).unwrap().data(),
                parallel_summary.statistic(l).unwrap().data(),
                "parallel summary diverged at length {l}"
            );
        }
        table.push_row(vec![
            ell.to_string(),
            explicit_time,
            nnz,
            format!("{:.4}", factorized_time.as_secs_f64()),
            format!("{:.4}", parallel_time.as_secs_f64()),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 5b): the explicit W^l time and density grow");
    println!("roughly by a factor d per extra hop and become infeasible around l = 5,");
    println!("while the factorized summaries stay linear in l (milliseconds per hop);");
    println!("the par4 column shows the same computation on 4 threads (bit-identical).");
}
