//! Fig. 6c: the optimal scaling factor λ as a function of the label fraction `f`
//! (n = 10k, d = 25, h = 8).
//!
//! The paper's conclusion: λ = 10 is a robust choice across the sparse regime; only for
//! large `f` (plenty of labels) do small λ (relying on immediate neighbors) win.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{DceConfig, DceWithRestarts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 25.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(23);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");
    println!(
        "fig6c: optimal lambda vs label fraction (n = {}, d = 25, h = 8)",
        syn.graph.num_nodes()
    );

    let fractions = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0];
    let lambdas = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];

    let mut table = ExperimentTable::new(
        "fig6c_lambda_robust_f",
        &["f", "best_lambda", "best_L2", "L2_at_lambda10"],
    );
    for (fi, &f) in fractions.iter().enumerate() {
        let mut sample_rng = StdRng::seed_from_u64(900 + fi as u64);
        let seeds = syn.labeling.stratified_sample(f, &mut sample_rng);
        let mut best = (f64::NAN, f64::INFINITY);
        let mut at_ten = f64::NAN;
        for &lambda in &lambdas {
            let est = DceWithRestarts::new(DceConfig::new(5, lambda), 10);
            let h = est.estimate(&syn.graph, &seeds).expect("estimation");
            let err = gold.frobenius_distance(&h).expect("distance");
            if err < best.1 {
                best = (lambda, err);
            }
            if (lambda - 10.0).abs() < 1e-9 {
                at_ten = err;
            }
        }
        table.push_row(vec![
            format!("{f}"),
            format!("{}", best.0),
            format!("{:.4}", best.1),
            format!("{:.4}", at_ten),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6c): for sparse labels the optimal lambda is");
    println!("around 10 (and L2 at lambda = 10 is within ~10% of the optimum); for");
    println!("f close to 1 small lambda values become optimal.");
}
