//! Fig. 6a: L2 distance of the DCE estimate from the gold standard for the three
//! normalization variants and maximum path lengths ℓmax = 1..5
//! (n = 10k, d = 25, h = 8, f = 0.05, λ = 10).
//!
//! The paper finds variant 1 (row-stochastic) with ℓmax = 5 optimal; variant 3 is worse
//! and variant 2 has higher variance.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{DceConfig, DceWithRestarts, NormalizationVariant};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 25.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(17);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");
    println!(
        "fig6a: DCE normalization variants (n = {}, d = 25, h = 8, f = 0.05)",
        syn.graph.num_nodes()
    );

    let mut table = ExperimentTable::new(
        "fig6a_variants",
        &["lmax", "variant1_L2", "variant2_L2", "variant3_L2"],
    );
    let repetitions = 3;
    for lmax in 1..=5usize {
        let mut row = vec![lmax.to_string()];
        for variant in NormalizationVariant::all() {
            let mut total = 0.0;
            for rep in 0..repetitions {
                let mut sample_rng = StdRng::seed_from_u64(100 + rep);
                let seeds = syn.labeling.stratified_sample(0.05, &mut sample_rng);
                let est = DceWithRestarts::new(
                    DceConfig {
                        max_length: lmax,
                        lambda: 10.0,
                        variant,
                        ..DceConfig::default()
                    },
                    10,
                );
                let h = est.estimate(&syn.graph, &seeds).expect("estimation");
                total += gold.frobenius_distance(&h).expect("distance");
            }
            row.push(format!("{:.4}", total / repetitions as f64));
        }
        table.push_row(row);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6a): variant 1 achieves the lowest L2 norm,");
    println!("longer paths (lmax = 5) help, and variant 3 is consistently worse.");
}
