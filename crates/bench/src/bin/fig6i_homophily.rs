//! Fig. 6i: sanity check against homophily-based SSL. On a graph with arbitrary
//! (heterophilous) compatibilities (n = 10k, d = 15, h = 3), standard homophily methods
//! (harmonic functions, random walks) fall far behind GS-LinBP and DCEr-LinBP as soon
//! as any labels are available.
//!
//! All backends run through the `Propagator` registry (`linbp`, `bp`, `harmonic`,
//! `rw`), so this binary doubles as the propagation-backend sweep of the harness.

use fg_bench::{accuracy_vs_backend, backends_to_table, scaled_n};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 15.0, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(61);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    println!(
        "fig6i: homophily baseline comparison (n = {}, d = 15, h = 3)",
        syn.graph.num_nodes()
    );

    let fractions = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0];

    // Propagation backends on the gold-standard compatibilities, via the registry.
    let backends = ["linbp", "harmonic", "rw"];
    let outcomes = accuracy_vs_backend(&syn.graph, &syn.labeling, &fractions, &backends, 1, 700)
        .expect("backend sweep");
    let mut table = backends_to_table("fig6i_homophily", &outcomes, &backends);

    // Add the end-to-end DCEr + LinBP column (estimated, not gold-standard, H).
    table.headers.push("DCEr+LinBP".to_string());
    for (fi, &f) in fractions.iter().enumerate() {
        let mut sample_rng = StdRng::seed_from_u64(700 ^ ((fi as u64) << 32));
        let seeds = syn.labeling.stratified_sample(f, &mut sample_rng);
        let dcer = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(DceWithRestarts::default())
            .propagator(LinBp::default())
            .run()
            .expect("DCEr pipeline")
            .accuracy(&syn.labeling, &seeds);
        table.rows[fi].push(format!("{dcer:.3}"));
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6i): GS-LinBP and DCEr+LinBP climb toward high");
    println!("accuracy with increasing f, while the homophily-based backends (harmonic");
    println!("functions, random walks) stay near the 1/k random baseline on this");
    println!("heterophilous graph.");
}
