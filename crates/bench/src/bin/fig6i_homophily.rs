//! Fig. 6i: sanity check against homophily-based SSL. On a graph with arbitrary
//! (heterophilous) compatibilities (n = 10k, d = 15, h = 3), standard homophily methods
//! (harmonic functions) fall far behind GS-LinBP and DCEr-LinBP as soon as any labels
//! are available.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 15.0, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(61);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");
    println!(
        "fig6i: homophily baseline comparison (n = {}, d = 15, h = 3)",
        syn.graph.num_nodes()
    );

    let fractions = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0];
    let mut table = ExperimentTable::new(
        "fig6i_homophily",
        &["f", "GS", "DCEr", "Homophily(harmonic)", "RandomWalk"],
    );
    for (fi, &f) in fractions.iter().enumerate() {
        let mut sample_rng = StdRng::seed_from_u64(700 + fi as u64);
        let seeds = syn.labeling.stratified_sample(f, &mut sample_rng);

        let gs = propagate_with("GS", &gold, &syn.graph, &seeds, &LinBpConfig::default())
            .expect("GS propagation")
            .accuracy(&syn.labeling, &seeds);
        let dcer = estimate_and_propagate(
            &DceWithRestarts::default(),
            &syn.graph,
            &seeds,
            &LinBpConfig::default(),
        )
        .expect("DCEr pipeline")
        .accuracy(&syn.labeling, &seeds);
        let harmonic = harmonic_functions(&syn.graph, &seeds, &HarmonicConfig::default())
            .expect("harmonic functions");
        let harmonic_acc =
            fg_propagation::unlabeled_accuracy(&harmonic.predictions, &syn.labeling, &seeds);
        let walk = multi_rank_walk(&syn.graph, &seeds, &RandomWalkConfig::default())
            .expect("random walk");
        let walk_acc =
            fg_propagation::unlabeled_accuracy(&walk.predictions, &syn.labeling, &seeds);

        table.push_row(vec![
            format!("{f}"),
            format!("{gs:.3}"),
            format!("{dcer:.3}"),
            format!("{harmonic_acc:.3}"),
            format!("{walk_acc:.3}"),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6i): GS and DCEr climb toward high accuracy with");
    println!("increasing f, while the homophily-based methods stay near the 1/k random");
    println!("baseline on this heterophilous graph.");
}
