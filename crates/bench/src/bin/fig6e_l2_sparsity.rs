//! Fig. 6e: L2 distance of the MCE / DCE / DCEr estimates from the gold standard as the
//! label fraction shrinks (n = 10k, d = 25, h = 8).
//!
//! The paper's message: all three coincide when labels are plentiful; as `f` drops MCE
//! degrades first, single-start DCE gets trapped in local optima, and DCEr stays close
//! to the gold standard the longest.

use fg_bench::{accuracy_vs_sparsity, outcomes_to_table, scaled_n, EstimatorKind};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 25.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(31);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    println!(
        "fig6e: L2 error vs label sparsity (n = {}, d = 25, h = 8)",
        syn.graph.num_nodes()
    );

    let fractions = [0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0];
    let kinds = [EstimatorKind::Mce, EstimatorKind::Dce, EstimatorKind::Dcer];
    let outcomes = accuracy_vs_sparsity(&syn.graph, &syn.labeling, &fractions, &kinds, 3, 13)
        .expect("sweep succeeds");
    let table = outcomes_to_table("fig6e_l2_sparsity", &outcomes, &kinds, |o| {
        o.l2_error.unwrap_or(f64::NAN)
    });
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6e): L2(MCE) >= L2(DCE) >= L2(DCEr) once f");
    println!("drops below a few percent; all three converge for f close to 1.");
}
