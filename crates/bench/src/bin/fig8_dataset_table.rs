//! Fig. 8 (table): dataset statistics and DCEr estimation runtime per dataset.
//!
//! The published table lists n, m, d, k and the DCEr runtime in seconds on the authors'
//! hardware (e.g. 5.12 s for Pokec-Gender, 0.07 s for MovieLens). We reproduce the same
//! columns on the dataset substitutes; runtimes scale with the substitute size.

use fg_bench::{time_it, ExperimentTable};
use fg_core::prelude::*;
use fg_datasets::{synthesize, DatasetId};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = std::env::var("FG_DATASET_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    println!("fig8: dataset statistics and DCEr runtime (substitute graphs)");

    let mut table = ExperimentTable::new(
        "fig8_dataset_table",
        &[
            "dataset",
            "n_paper",
            "m_paper",
            "k",
            "n_substitute",
            "m_substitute",
            "d",
            "DCEr_s",
        ],
    );
    for id in DatasetId::all() {
        let per_dataset_scale = scale.unwrap_or(match id {
            DatasetId::Cora | DatasetId::Citeseer => 1.0,
            DatasetId::PokecGender | DatasetId::Flickr => 0.002,
            _ => 0.05,
        });
        let instance = synthesize(id, per_dataset_scale, 31).expect("synthesis");
        let mut rng = StdRng::seed_from_u64(32);
        let seeds = instance.labeling.stratified_sample(0.01, &mut rng);
        let (_, elapsed) = time_it(|| {
            DceWithRestarts::default()
                .estimate(&instance.graph, &seeds)
                .expect("DCEr")
        });
        table.push_row(vec![
            id.name().to_string(),
            instance.spec.n.to_string(),
            instance.spec.m.to_string(),
            instance.spec.k.to_string(),
            instance.graph.num_nodes().to_string(),
            instance.graph.num_edges().to_string(),
            format!("{:.1}", instance.graph.average_degree()),
            format!("{:.3}", elapsed.as_secs_f64()),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 8): DCEr runtime grows linearly with the");
    println!("substitute's edge count and with k (Hep-Th with k = 11 is the most");
    println!("expensive relative to its size), and stays in seconds even for the largest");
    println!("graphs at full scale.");
}
