//! Fig. 6k: scalability of every estimator with the number of edges `m` (d = 5, h = 8).
//! Same harness as Fig. 3b but reporting all estimators side by side; the `fig3b`
//! binary focuses on the headline DCEr vs propagation vs Holdout comparison.

use fg_bench::{scale_factor, time_it, ExperimentTable};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let scale = scale_factor();
    let sizes: Vec<usize> = [1_000usize, 4_000, 16_000, 64_000, 256_000]
        .iter()
        .map(|&n| ((n as f64 * scale) as usize).max(500))
        .collect();
    println!("fig6k: estimator scalability with m (d = 5, h = 8, f = 0.01)");

    let mut table = ExperimentTable::new(
        "fig6k_scalability",
        &["m", "MCE_s", "LCE_s", "DCE_s", "DCEr_s", "prop_s"],
    );
    for &n in &sizes {
        let config = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(71);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let seeds = syn.labeling.stratified_sample(0.01, &mut rng);

        let estimators: Vec<(&str, Box<dyn CompatibilityEstimator>)> = vec![
            ("MCE", Box::new(MyopicCompatibilityEstimation::default())),
            ("LCE", Box::new(LinearCompatibilityEstimation::default())),
            ("DCE", Box::new(DistantCompatibilityEstimation::default())),
            ("DCEr", Box::new(DceWithRestarts::default())),
        ];
        let mut row = vec![syn.graph.num_edges().to_string()];
        let mut last_h = syn.planted_h.as_dense().clone();
        for (_, est) in &estimators {
            let (h, t) = time_it(|| est.estimate(&syn.graph, &seeds).expect("estimate"));
            row.push(format!("{:.3}", t.as_secs_f64()));
            last_h = h;
        }
        let (_, prop_t) = time_it(|| {
            propagate(
                &syn.graph,
                &seeds,
                &last_h,
                &LinBpConfig {
                    max_iterations: 10,
                    tolerance: None,
                    ..LinBpConfig::default()
                },
            )
            .expect("propagation")
        });
        row.push(format!("{:.3}", prop_t.as_secs_f64()));
        table.push_row(row);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6k): every column grows linearly in m; MCE is");
    println!("cheapest, DCE and DCEr converge to the same cost for large m (the shared");
    println!("summarization dominates), and 10-iteration propagation costs more than DCEr.");
}
