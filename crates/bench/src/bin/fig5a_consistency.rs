//! Fig. 5a (Example 4.2): consistency of the non-backtracking statistics.
//!
//! On a graph with n = 10k, d = 20, h = 3 and f = 0.1, compare the top entry of the
//! observed statistics matrices `P̂(ℓ)` (all paths) and `P̂(ℓ)_NB` (non-backtracking)
//! against the true `Hℓ` for ℓ = 1..5. The paper reports the series
//! 0.6, 0.44, 0.376, 0.3504, … for `Hℓ` and shows that only the NB statistics track it.

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use fg_core::{summarize, NormalizationVariant, SummaryConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced_uniform(n, 20.0, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(11);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    println!(
        "fig5a: estimator consistency (n = {}, d = 20, h = 3, f = 0.1)",
        syn.graph.num_nodes()
    );

    let max_length = 5;
    let nb = summarize(
        &syn.graph,
        &seeds,
        &SummaryConfig {
            max_length,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        },
    )
    .expect("NB summary");
    let full = summarize(
        &syn.graph,
        &seeds,
        &SummaryConfig {
            max_length,
            non_backtracking: false,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        },
    )
    .expect("full-path summary");

    let mut table = ExperimentTable::new(
        "fig5a_consistency",
        &[
            "l",
            "H^l[0][1]",
            "P_full[0][1]",
            "P_NB[0][1]",
            "L2(full)",
            "L2(NB)",
        ],
    );
    for ell in 1..=max_length {
        let h_pow = syn.planted_h.pow(ell);
        let p_full = full.statistic(ell).unwrap();
        let p_nb = nb.statistic(ell).unwrap();
        table.push_row(vec![
            ell.to_string(),
            format!("{:.4}", h_pow.get(0, 1)),
            format!("{:.4}", p_full.get(0, 1)),
            format!("{:.4}", p_nb.get(0, 1)),
            format!("{:.4}", h_pow.frobenius_distance(p_full).unwrap()),
            format!("{:.4}", h_pow.frobenius_distance(p_nb).unwrap()),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 5a): the H^l column follows 0.6, 0.44, 0.376,");
    println!("0.3504, ...; the NB statistics match it closely while the full-path");
    println!("statistics drift (they over-count backtracking paths on the diagonal).");
}
