//! Fig. 6j: accuracy vs label sparsity under class imbalance α = [1/6, 1/3, 1/2] and a
//! general (non-h-parameterized) compatibility matrix
//! H = [[0.2, 0.6, 0.2], [0.6, 0.1, 0.3], [0.2, 0.3, 0.5]] (n = 10k, d = 25).
//!
//! The paper's point: DCEr handles label imbalance and arbitrary H just as well.

use fg_bench::{accuracy_vs_sparsity, outcomes_to_table, scaled_n, EstimatorKind};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let h = CompatibilityMatrix::from_rows(&[
        vec![0.2, 0.6, 0.2],
        vec![0.6, 0.1, 0.3],
        vec![0.2, 0.3, 0.5],
    ])
    .expect("valid general H");
    let config = GeneratorConfig {
        n,
        m: (n as f64 * 25.0 / 2.0) as usize,
        alpha: vec![1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0],
        h,
        distribution: DegreeDistribution::paper_power_law(),
    };
    let mut rng = StdRng::seed_from_u64(67);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    println!(
        "fig6j: class imbalance alpha = [1/6, 1/3, 1/2], general H (n = {}, d = 25)",
        syn.graph.num_nodes()
    );

    let fractions = [0.0001, 0.001, 0.01, 0.1, 1.0];
    let kinds = EstimatorKind::standard_set();
    let outcomes = accuracy_vs_sparsity(&syn.graph, &syn.labeling, &fractions, &kinds, 3, 19)
        .expect("sweep succeeds");
    let table = outcomes_to_table("fig6j_imbalance", &outcomes, &kinds, |o| o.accuracy);
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6j): same ordering as Fig. 3a — DCEr tracks GS");
    println!("across the whole sparsity range despite the imbalance, MCE/LCE need much");
    println!("denser labels.");
}
