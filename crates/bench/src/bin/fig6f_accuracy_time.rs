//! Fig. 6f: accuracy vs estimation time at a fixed sparse labeling
//! (n = 10k, d = 25, h = 3, f = 0.3%), including the Holdout baseline with b = 1, 2, 4
//! splits. The paper reports DCEr matching GS accuracy at ~0.1 s while Holdout needs
//! hundreds of seconds (a ~2500x gap).

use fg_bench::{scaled_n, ExperimentTable};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 25.0, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(37);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let seeds = syn.labeling.stratified_sample(0.003, &mut rng);
    let gold = measure_compatibilities(&syn.graph, &syn.labeling).expect("gold standard");
    println!(
        "fig6f: accuracy vs estimation time (n = {}, d = 25, h = 3, f = 0.003, {} seeds)",
        syn.graph.num_nodes(),
        seeds.num_labeled()
    );

    let mut table = ExperimentTable::new(
        "fig6f_accuracy_time",
        &["method", "estimation_s", "accuracy"],
    );

    // Gold standard: zero estimation cost.
    let gs_result = Pipeline::on(&syn.graph)
        .seeds(&seeds)
        .compatibilities("GS", &gold)
        .run()
        .expect("GS propagation");
    table.push_row(vec![
        "GS".into(),
        "0.000".into(),
        format!("{:.3}", gs_result.accuracy(&syn.labeling, &seeds)),
    ]);

    let estimators: Vec<(String, Box<dyn CompatibilityEstimator>)> = vec![
        (
            "MCE".into(),
            Box::new(MyopicCompatibilityEstimation::default()),
        ),
        (
            "LCE".into(),
            Box::new(LinearCompatibilityEstimation::default()),
        ),
        (
            "DCE".into(),
            Box::new(DistantCompatibilityEstimation::default()),
        ),
        ("DCEr".into(), Box::new(DceWithRestarts::default())),
        (
            "Holdout b=1".into(),
            Box::new(HoldoutEstimation::with_splits(1)),
        ),
        (
            "Holdout b=2".into(),
            Box::new(HoldoutEstimation::with_splits(2)),
        ),
        (
            "Holdout b=4".into(),
            Box::new(HoldoutEstimation::with_splits(4)),
        ),
    ];
    for (name, estimator) in &estimators {
        let report = Pipeline::on(&syn.graph)
            .seeds(&seeds)
            .estimator(estimator)
            .estimator_label(name.clone())
            .run()
            .expect("pipeline");
        table.push_row(vec![
            name.clone(),
            format!("{:.3}", report.estimation_time.as_secs_f64()),
            format!("{:.3}", report.accuracy(&syn.labeling, &seeds)),
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6f): DCEr reaches GS-level accuracy orders of");
    println!("magnitude faster than the Holdout variants; MCE/LCE are fast but much less");
    println!("accurate at this sparsity; more Holdout splits buy little accuracy at");
    println!("proportionally higher cost.");
}
