//! Fig. 3a / Fig. 6j-style experiment: end-to-end labeling accuracy vs label sparsity
//! `f` on a synthetic graph with n = 10k, d = 25, h = 3, for GS / LCE / MCE / DCE / DCEr
//! (plus Holdout at the sparser end when `FG_WITH_HOLDOUT=1`).
//!
//! Paper reference values (Fig. 3a): at f = 0.08% (8 labeled nodes of 10k) DCEr reaches
//! accuracy ≈ 0.51, matching GS; MCE/LCE stay near random (≈ 0.33) until f ≈ 1%.

use fg_bench::{accuracy_vs_sparsity, outcomes_to_table, scaled_n, EstimatorKind};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    let config = GeneratorConfig::balanced(n, 25.0, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(42);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    println!(
        "fig3a: accuracy vs label sparsity (n = {}, m = {}, d = 25, h = 3)",
        syn.graph.num_nodes(),
        syn.graph.num_edges()
    );

    let fractions = [0.0001, 0.0003, 0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0];
    let mut kinds = EstimatorKind::standard_set();
    if std::env::var("FG_WITH_HOLDOUT").as_deref() == Ok("1") {
        kinds.push(EstimatorKind::Holdout);
    }
    let outcomes = accuracy_vs_sparsity(&syn.graph, &syn.labeling, &fractions, &kinds, 3, 7)
        .expect("sweep succeeds");

    let table = outcomes_to_table("fig3a_sparsity", &outcomes, &kinds, |o| o.accuracy);
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 3a): DCEr tracks GS down to f ≈ 0.1%,");
    println!("while MCE and LCE only catch up once f exceeds roughly 1%.");
}
