//! Fig. 6l: estimation time as the number of classes `k` grows
//! (n = 10k, d = 25, h = 3, f = 1%). DCEr uses 10 restarts.
//!
//! The paper's expectation: for large graphs the `O(mk)` summarization dominates and all
//! sketch-based estimators scale mildly in k; the `O(k⁴r)` optimization only matters for
//! small graphs with many classes. The Holdout baseline is far slower throughout.

use fg_bench::{scaled_n, time_it, ExperimentTable};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    println!("fig6l: estimation time vs number of classes (n = {n}, d = 25, h = 3, f = 0.01)");
    let with_holdout = std::env::var("FG_WITH_HOLDOUT").as_deref() == Ok("1");

    let mut table = ExperimentTable::new(
        "fig6l_classes_time",
        &["k", "LCE_s", "MCE_s", "DCE_s", "DCEr_s", "Holdout_s"],
    );
    for k in 2..=7usize {
        let config = GeneratorConfig::balanced(n, 25.0, k, 3.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(79 + k as u64);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let seeds = syn.labeling.stratified_sample(0.01, &mut rng);

        let (_, lce_t) = time_it(|| {
            LinearCompatibilityEstimation::default()
                .estimate(&syn.graph, &seeds)
                .expect("LCE")
        });
        let (_, mce_t) = time_it(|| {
            MyopicCompatibilityEstimation::default()
                .estimate(&syn.graph, &seeds)
                .expect("MCE")
        });
        let (_, dce_t) = time_it(|| {
            DistantCompatibilityEstimation::default()
                .estimate(&syn.graph, &seeds)
                .expect("DCE")
        });
        let (_, dcer_t) = time_it(|| {
            DceWithRestarts::default()
                .estimate(&syn.graph, &seeds)
                .expect("DCEr")
        });
        let holdout = if with_holdout {
            let (_, t) = time_it(|| {
                HoldoutEstimation::default()
                    .estimate(&syn.graph, &seeds)
                    .expect("Holdout")
            });
            format!("{:.3}", t.as_secs_f64())
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            k.to_string(),
            format!("{:.3}", lce_t.as_secs_f64()),
            format!("{:.3}", mce_t.as_secs_f64()),
            format!("{:.3}", dce_t.as_secs_f64()),
            format!("{:.3}", dcer_t.as_secs_f64()),
            holdout,
        ]);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6l): the sketch-based estimators grow mildly");
    println!("with k (the summarization is O(mk)); DCEr's extra cost over DCE grows with");
    println!("k because of the O(k^4) optimization repeated r times; Holdout dwarfs all.");
}
