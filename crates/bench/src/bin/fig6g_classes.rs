//! Fig. 6g: end-to-end accuracy as the number of classes `k` grows
//! (n = 10k, d = 25, h = 3, f = 1%), compared against random labeling (1/k).
//!
//! The paper finds DCEr stays robustly above the alternatives as k (and thus the number
//! of parameters O(k²)) grows, while other SSL estimators deteriorate for k > 3.

use fg_bench::{accuracy_vs_sparsity, scaled_n, EstimatorKind, ExperimentTable};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scaled_n(10_000);
    println!("fig6g: accuracy vs number of classes (n = {n}, d = 25, h = 3, f = 0.01)");
    let kinds = [
        EstimatorKind::GoldStandard,
        EstimatorKind::Lce,
        EstimatorKind::Mce,
        EstimatorKind::Dce,
        EstimatorKind::Dcer,
    ];
    let mut headers: Vec<String> = vec!["k".into()];
    headers.extend(kinds.iter().map(|k| k.name().to_string()));
    headers.push("Random".into());
    let mut table = ExperimentTable {
        name: "fig6g_classes".into(),
        headers,
        rows: Vec::new(),
    };

    for k in 2..=8usize {
        let config = GeneratorConfig::balanced(n, 25.0, k, 3.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(41 + k as u64);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let outcomes =
            accuracy_vs_sparsity(&syn.graph, &syn.labeling, &[0.01], &kinds, 2, 17).expect("sweep");
        let mut row = vec![k.to_string()];
        for kind in &kinds {
            let values: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.estimator == kind.name())
                .map(|o| o.accuracy)
                .collect();
            row.push(format!(
                "{:.3}",
                values.iter().sum::<f64>() / values.len() as f64
            ));
        }
        row.push(format!("{:.3}", 1.0 / k as f64));
        table.push_row(row);
    }
    table.print_and_save();
    println!("\nExpected shape (paper Fig. 6g): accuracy decreases with k for every method");
    println!("(more classes, more parameters), DCEr stays closest to GS throughout, and");
    println!("all informative methods remain above the 1/k random baseline.");
}
