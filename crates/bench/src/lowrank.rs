//! Low-rank counting benchmark with a built-in full-rank oracle, feeding the
//! committed `BENCH_lowrank.json` trajectory at the repository root.
//!
//! Measures the claim behind the spectral `V·Λ·Vᵀ` counting backend: once the
//! rank-`r` factor exists, one summarize costs `O(r²·k·ℓmax)` — independent of
//! the edge count — versus `O(m·k·ℓmax)` for the exact kernel. On a graph with
//! `nnz ≥ 20·n` the rank-64 recurrence should beat exact counting by a wide
//! margin at `ℓmax = 5`.
//!
//! Three report sections:
//!
//! 1. **Exact baseline** — mean seconds per exact non-backtracking summarize.
//! 2. **Per-rank rows** — the one-time eigensolve cost (`eigensolve_s`, paid
//!    once per graph and amortized through the factor cache and `.fgv` store),
//!    the per-call factor-space recurrence cost (`summarize_s`), the resulting
//!    `speedup_vs_exact`, and `breakeven_calls` — how many summarize calls
//!    amortize the eigensolve.
//! 3. **Accuracy** — the [`accuracy_vs_rank`] sweep on a companion graph: the
//!    end-to-end label accuracy and `H` drift of each rank against the exact
//!    backend (the "within a couple of points at some `r ≤ 64`" gate).
//!
//! Before any timing, a full-rank oracle on a small graph asserts that the
//! factor-space recurrence reproduces the exact counts **and** that the
//! `SummaryConfig`-level dispatch reproduces the exact normalized statistics,
//! in both counting modes — a red bench run is a correctness failure, not a
//! perf blip.
//!
//! The recurrence-vs-exact speedup is serial-vs-serial, so unlike the kernel
//! thread-scaling report it is meaningful even on a single-core host; the
//! report still carries the shared `gating` mode and CI only enforces the
//! speedup floor on `"throughput"` hosts, where timings are least noisy.

use std::time::Instant;

use fg_core::lowrank_path_counts;
use fg_core::prelude::*;
use fg_graph::{FactorConfig, LowRankFactor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::kernels::{detected_cores, gating_mode};
use crate::micro::bench_iters;
use crate::sweeps::{accuracy_vs_rank, RankOutcome};

/// Shape of one low-rank bench run.
#[derive(Debug, Clone)]
pub struct LowRankBenchConfig {
    /// Nodes in the timing graph.
    pub nodes: usize,
    /// Average degree of the timing graph (`nnz = degree·nodes`; the committed
    /// configuration keeps `nnz ≥ 20·n` so the exact kernel has real work).
    pub degree: f64,
    /// Classes (= RHS width of the recurrence).
    pub classes: usize,
    /// Labeled fraction of the timing graph.
    pub fraction: f64,
    /// Maximum path length `ℓmax`.
    pub max_length: usize,
    /// Spectral ranks measured, one row each.
    pub ranks: Vec<usize>,
    /// Timed iterations per measurement.
    pub iters: usize,
    /// Nodes in the small full-rank oracle graph (kept small because the
    /// oracle eigensolve runs at rank `n`).
    pub oracle_nodes: usize,
    /// Nodes in the accuracy-sweep graph (smaller than the timing graph so a
    /// full estimate-then-propagate pipeline per rank stays cheap).
    pub accuracy_nodes: usize,
}

impl LowRankBenchConfig {
    /// The committed-report configuration: `nnz = 20·n` at n = 20k.
    pub fn full() -> LowRankBenchConfig {
        LowRankBenchConfig {
            nodes: 20_000,
            degree: 20.0,
            classes: 3,
            fraction: 0.05,
            max_length: 5,
            ranks: vec![8, 16, 32, 64],
            iters: 10,
            oracle_nodes: 120,
            accuracy_nodes: 2_000,
        }
    }

    /// A seconds-scale variant for CI smoke runs.
    pub fn smoke() -> LowRankBenchConfig {
        LowRankBenchConfig {
            nodes: 3_000,
            degree: 20.0,
            classes: 3,
            fraction: 0.05,
            max_length: 5,
            ranks: vec![8, 16],
            iters: 2,
            oracle_nodes: 60,
            accuracy_nodes: 600,
        }
    }
}

/// One measured rank: eigensolve (one-time) and recurrence (per-call) costs.
#[derive(Debug, Clone)]
pub struct LowRankRow {
    /// Spectral rank.
    pub rank: usize,
    /// Seconds for the one-time eigensolve (single run — this is the cost the
    /// factor cache and the `.fgv` store amortize away).
    pub eigensolve_s: f64,
    /// Subspace iterations the eigensolve needed.
    pub eigen_iterations: usize,
    /// Mean seconds per factor-space summarize (projection + recurrence).
    pub summarize_s: f64,
    /// `exact_s / summarize_s`.
    pub speedup_vs_exact: f64,
    /// Summarize calls after which the eigensolve has paid for itself
    /// (`eigensolve_s / (exact_s − summarize_s)`); `None` when the recurrence
    /// is not faster than exact counting.
    pub breakeven_calls: Option<f64>,
}

impl LowRankRow {
    /// Render as one aligned report line.
    pub fn to_line(&self) -> String {
        format!(
            "rank={:<4} eigensolve {:>9.4}s ({:>4} iters)  summarize {:>10.6}s  {:>7.1}x vs exact  breakeven {}",
            self.rank,
            self.eigensolve_s,
            self.eigen_iterations,
            self.summarize_s,
            self.speedup_vs_exact,
            match self.breakeven_calls {
                Some(calls) => format!("{calls:.1} calls"),
                None => "never".to_string(),
            }
        )
    }
}

/// The full low-rank bench result: exact baseline, per-rank rows, the accuracy
/// sweep, and hardware facts.
#[derive(Debug, Clone)]
pub struct LowRankReport {
    /// Nonzeros of the timing graph's adjacency (2m).
    pub nnz: usize,
    /// Mean seconds per exact non-backtracking summarize at `ℓmax`.
    pub exact_s: f64,
    /// Per-rank measurements, in configured order.
    pub rows: Vec<LowRankRow>,
    /// Accuracy sweep outcomes (exact baseline first, then each rank).
    pub accuracy: Vec<RankOutcome>,
    /// Logical cores detected on the measuring host.
    pub cores: usize,
}

/// Assert that, at full rank, the factor-space recurrence reproduces the exact
/// counts and the `SummaryConfig`-level dispatch reproduces the exact
/// normalized statistics, in both counting modes.
fn full_rank_oracle(nodes: usize, classes: usize, seed: u64) -> fg_core::Result<()> {
    let gen = GeneratorConfig::balanced(nodes, 8.0, classes, 6.0)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let syn = generate(&gen, &mut rng)?;
    let seeds = syn.labeling.stratified_sample(0.3, &mut rng);
    let n = syn.graph.num_nodes();
    let factor = LowRankFactor::compute(&syn.graph, &FactorConfig::with_rank(n), Threads::Serial)?;
    for non_backtracking in [false, true] {
        let exact_config = SummaryConfig {
            max_length: 5,
            non_backtracking,
            ..SummaryConfig::default()
        };
        let exact = summarize_with(&syn.graph, &seeds, &exact_config, Threads::Serial)?;
        let counts = lowrank_path_counts(&factor, &seeds, 5, non_backtracking)?;
        for (l, (e, a)) in exact.counts.iter().zip(counts.iter()).enumerate() {
            assert!(
                e.approx_eq(a, 1e-6),
                "full-rank counts diverge from exact at length {} (nb={non_backtracking})",
                l + 1
            );
        }
        let lowrank_config = SummaryConfig {
            backend: CountingBackend::LowRank(FactorConfig::with_rank(n)),
            ..exact_config
        };
        let dispatched = summarize_with(&syn.graph, &seeds, &lowrank_config, Threads::Serial)?;
        for l in 1..=5 {
            let e = exact.statistic(l).expect("length within summary");
            let a = dispatched.statistic(l).expect("length within summary");
            assert!(
                e.approx_eq(a, 1e-6),
                "full-rank statistics diverge from exact at length {l} (nb={non_backtracking})"
            );
        }
    }
    Ok(())
}

/// Run the low-rank bench: verify the full-rank oracle, then time the exact
/// kernel and the factor-space recurrence at every configured rank, then run
/// the accuracy sweep.
pub fn run_lowrank_bench(cfg: &LowRankBenchConfig) -> fg_core::Result<LowRankReport> {
    full_rank_oracle(cfg.oracle_nodes, cfg.classes, 7)?;

    let gen = GeneratorConfig::balanced(cfg.nodes, cfg.degree, cfg.classes, 8.0)?;
    let mut rng = StdRng::seed_from_u64(3);
    let syn = generate(&gen, &mut rng)?;
    let seeds = syn.labeling.stratified_sample(cfg.fraction, &mut rng);
    let nnz = syn.graph.adjacency().nnz();

    let exact_config = SummaryConfig {
        max_length: cfg.max_length,
        ..SummaryConfig::default()
    };
    let exact_s = bench_iters("summarize_exact", cfg.iters, || {
        summarize_with(&syn.graph, &seeds, &exact_config, Threads::Serial).unwrap()
    })
    .mean
    .as_secs_f64();

    let mut rows = Vec::with_capacity(cfg.ranks.len());
    for &rank in &cfg.ranks {
        // The eigensolve is timed as a single run: it is the one-time cost the
        // factor cache and the `.fgv` store tier exist to amortize.
        let start = Instant::now();
        let factor =
            LowRankFactor::compute(&syn.graph, &FactorConfig::with_rank(rank), Threads::Serial)?;
        let eigensolve_s = start.elapsed().as_secs_f64();
        let summarize_s = bench_iters(&format!("lowrank_recurrence r={rank}"), cfg.iters, || {
            lowrank_path_counts(&factor, &seeds, cfg.max_length, true).unwrap()
        })
        .mean
        .as_secs_f64();
        let gain = exact_s - summarize_s;
        rows.push(LowRankRow {
            rank,
            eigensolve_s,
            eigen_iterations: factor.iterations(),
            summarize_s,
            speedup_vs_exact: exact_s / summarize_s,
            breakeven_calls: (gain > 0.0).then(|| eigensolve_s / gain),
        });
    }

    let acc_gen = GeneratorConfig::balanced(cfg.accuracy_nodes, 10.0, cfg.classes, 8.0)?;
    let mut acc_rng = StdRng::seed_from_u64(5);
    let acc = generate(&acc_gen, &mut acc_rng)?;
    let accuracy = accuracy_vs_rank(&acc.graph, &acc.labeling, 0.1, &cfg.ranks, 5)?;

    Ok(LowRankReport {
        nnz,
        exact_s,
        rows,
        accuracy,
        cores: detected_cores(),
    })
}

/// Render the committed `BENCH_lowrank.json` report.
pub fn render_lowrank_report(cfg: &LowRankBenchConfig, report: &LowRankReport) -> String {
    let gating = gating_mode(report.cores);
    let mut out = String::from("{\n  \"bench\": \"lowrank\",\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"cores\": {}}},\n  \"gating\": \"{}\",\n",
        report.cores, gating
    ));
    out.push_str(&format!(
        "  \"note\": \"{}\",\n",
        if gating == "structure" {
            "measured on a host with fewer than 4 cores: CI gates report shape, the \
             full-rank oracle, and accuracy; speedup floors apply on throughput hosts"
        } else {
            "measured on a multi-core host: CI additionally enforces the rank-64 \
             speedup floor"
        }
    ));
    out.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"degree\": {}, \"classes\": {}, \"fraction\": {}, \"max_length\": {}, \"iters\": {}}},\n",
        cfg.nodes, cfg.degree, cfg.classes, cfg.fraction, cfg.max_length, cfg.iters
    ));
    out.push_str(&format!(
        "  \"exact\": {{\"summarize_s\": {:.6}, \"nnz\": {}}},\n",
        report.exact_s, report.nnz
    ));
    out.push_str("  \"rows\": [\n");
    for (index, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rank\": {}, \"eigensolve_s\": {:.6}, \"eigen_iterations\": {}, \"summarize_s\": {:.6}, \"speedup_vs_exact\": {:.2}, \"breakeven_calls\": {}}}{}\n",
            row.rank,
            row.eigensolve_s,
            row.eigen_iterations,
            row.summarize_s,
            row.speedup_vs_exact,
            match row.breakeven_calls {
                Some(calls) => format!("{calls:.1}"),
                None => "null".to_string(),
            },
            if index + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"accuracy\": [\n");
    for (index, o) in report.accuracy.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rank\": {}, \"accuracy\": {:.4}, \"h_l2_vs_exact\": {:.6}}}{}\n",
            match o.rank {
                Some(r) => r.to_string(),
                None => "null".to_string(),
            },
            o.accuracy,
            o.h_l2_vs_exact,
            if index + 1 < report.accuracy.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn lowrank_report_renders_parseable_json() {
        let cfg = LowRankBenchConfig::smoke();
        let report = LowRankReport {
            nnz: 60_000,
            exact_s: 0.004,
            rows: vec![
                LowRankRow {
                    rank: 8,
                    eigensolve_s: 0.9,
                    eigen_iterations: 250,
                    summarize_s: 0.0004,
                    speedup_vs_exact: 10.0,
                    breakeven_calls: Some(250.0),
                },
                LowRankRow {
                    rank: 16,
                    eigensolve_s: 1.1,
                    eigen_iterations: 200,
                    summarize_s: 0.005,
                    speedup_vs_exact: 0.8,
                    breakeven_calls: None,
                },
            ],
            accuracy: vec![
                RankOutcome {
                    rank: None,
                    accuracy: 0.8,
                    h_l2_vs_exact: 0.0,
                    summarize_time: Duration::from_millis(4),
                },
                RankOutcome {
                    rank: Some(8),
                    accuracy: 0.79,
                    h_l2_vs_exact: 0.01,
                    summarize_time: Duration::from_millis(1),
                },
            ],
            cores: 1,
        };
        let rendered = render_lowrank_report(&cfg, &report);
        let parsed = fg_serve::Json::parse(&rendered).expect("report must be valid JSON");
        assert_eq!(
            parsed.get("bench").and_then(fg_serve::Json::as_str),
            Some("lowrank")
        );
        assert_eq!(
            parsed.get("gating").and_then(fg_serve::Json::as_str),
            Some("structure")
        );
        let rows = parsed
            .get("rows")
            .and_then(fg_serve::Json::as_array)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].get("rank").and_then(fg_serve::Json::as_usize),
            Some(8)
        );
        // `breakeven_calls: None` renders as a JSON null, not a string.
        assert!(rows[1].get("breakeven_calls").is_some());
        let accuracy = parsed
            .get("accuracy")
            .and_then(fg_serve::Json::as_array)
            .unwrap();
        assert_eq!(accuracy.len(), 2);
        // The exact baseline row carries a null rank.
        assert!(accuracy[0].get("rank").is_some());
        assert_eq!(
            accuracy[1].get("rank").and_then(fg_serve::Json::as_usize),
            Some(8)
        );
    }

    #[test]
    fn smoke_bench_passes_its_full_rank_oracle() {
        let cfg = LowRankBenchConfig {
            nodes: 500,
            degree: 12.0,
            classes: 3,
            fraction: 0.2,
            max_length: 5,
            ranks: vec![6, 12],
            iters: 1,
            oracle_nodes: 50,
            accuracy_nodes: 300,
        };
        let report = run_lowrank_bench(&cfg).expect("lowrank bench");
        assert_eq!(report.rows.len(), 2);
        assert!(report.exact_s > 0.0);
        for row in &report.rows {
            assert!(row.eigensolve_s > 0.0);
            assert!(row.summarize_s > 0.0);
            assert!(row.speedup_vs_exact > 0.0);
            assert!(row.eigen_iterations > 0);
            assert!(!row.to_line().is_empty());
        }
        // Exact baseline + one outcome per configured rank.
        assert_eq!(report.accuracy.len(), 3);
        assert_eq!(report.accuracy[0].rank, None);
        assert_eq!(report.accuracy[0].h_l2_vs_exact, 0.0);
    }
}
