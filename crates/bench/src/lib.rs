//! # fg-bench
//!
//! Experiment harness shared by the figure-reproduction binaries (`src/bin/fig*.rs`) and
//! the Criterion benches. Every table and figure of the paper's evaluation section has a
//! corresponding binary that prints the same rows/series the paper reports and writes a
//! CSV under `target/experiments/`.
//!
//! The harness keeps experiment sizes configurable through the `FG_SCALE` environment
//! variable (default 1.0 for figure binaries, where the built-in sizes are already
//! laptop-friendly reductions of the paper's setups).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod kernels;
pub mod lowrank;
pub mod micro;
pub mod obs;
pub mod serve_load;
pub mod sweeps;

pub use harness::{scale_factor, scaled_n, time_it, ExperimentTable};
pub use kernels::{
    detected_cores, gating_mode, render_kernel_report, run_kernel_bench, KernelBenchConfig,
    KernelReport, KernelRow, SpmmComparison,
};
pub use lowrank::{
    render_lowrank_report, run_lowrank_bench, LowRankBenchConfig, LowRankReport, LowRankRow,
};
pub use micro::{bench_iters, run_bench, BenchMeasurement};
pub use obs::{
    render_obs_report, run_obs_bench, ObsBenchConfig, ObsReport, DISABLED_OVERHEAD_LIMIT_PCT,
};
pub use serve_load::{percentile_ms, render_report, run_serve_load, LoadRow, ServeLoadConfig};
pub use sweeps::{
    accuracy_vs_backend, accuracy_vs_backend_parallel, accuracy_vs_construction, accuracy_vs_rank,
    accuracy_vs_sparsity, accuracy_vs_sparsity_parallel, accuracy_vs_sparsity_with,
    backends_to_table, construction_to_table, estimator_set, l2_vs_sparsity, outcomes_to_table,
    ranks_to_table, run_cells_parallel, warm_context_for, BackendOutcome, ConstructionOutcome,
    EstimatorKind, RankOutcome, SweepOutcome,
};
