//! A tiny manual-timing micro-benchmark harness.
//!
//! The build environment has no access to crates.io, so the `benches/` targets use
//! this module (with `harness = false`) instead of Criterion: warm up, run a fixed
//! number of timed iterations, and report min/mean/max per-iteration wall-clock time.
//! The output format is one aligned line per benchmark, so `cargo bench` logs diff
//! cleanly across commits — that is what the perf trajectory tracks.

use std::time::{Duration, Instant};

/// Number of timed iterations used by [`run_bench`] (after one warm-up iteration).
pub const DEFAULT_ITERS: usize = 10;

/// Summary statistics of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchMeasurement {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations.
    pub iters: usize,
    /// Fastest iteration.
    pub min: Duration,
    /// Arithmetic mean over iterations.
    pub mean: Duration,
    /// Slowest iteration.
    pub max: Duration,
}

impl BenchMeasurement {
    /// Render as a single aligned report line.
    pub fn to_line(&self) -> String {
        format!(
            "{:<44} {:>5} iters  min {:>12?}  mean {:>12?}  max {:>12?}",
            self.name, self.iters, self.min, self.mean, self.max
        )
    }
}

/// Time `f` for `iters` iterations (plus one untimed warm-up), returning the stats.
/// The closure's return value is consumed with [`std::hint::black_box`] so the work
/// is not optimized away.
pub fn bench_iters<T>(name: &str, iters: usize, mut f: impl FnMut() -> T) -> BenchMeasurement {
    std::hint::black_box(f());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let iters = iters.max(1);
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
        max = max.max(elapsed);
    }
    BenchMeasurement {
        name: name.to_string(),
        iters,
        min,
        mean: total / iters as u32,
        max,
    }
}

/// [`bench_iters`] with [`DEFAULT_ITERS`] iterations, printing the report line.
pub fn run_bench<T>(name: &str, f: impl FnMut() -> T) -> BenchMeasurement {
    let m = bench_iters(name, DEFAULT_ITERS, f);
    println!("{}", m.to_line());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_ordered_and_positive() {
        let m = bench_iters("sum", 5, || (0..10_000u64).sum::<u64>());
        assert_eq!(m.iters, 5);
        assert!(m.min <= m.mean && m.mean <= m.max);
        assert!(m.max > Duration::ZERO);
        assert!(m.to_line().contains("sum"));
    }

    #[test]
    fn zero_iters_is_clamped() {
        let m = bench_iters("noop", 0, || ());
        assert_eq!(m.iters, 1);
    }
}
