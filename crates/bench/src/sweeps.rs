//! Reusable experiment sweeps: accuracy-vs-sparsity and L2-error-vs-sparsity curves over
//! a configurable set of estimators, plus propagation-backend comparisons. These back
//! most of the figure binaries (Fig. 3a, 6e, 6i, 6j, 7a–h, 12, 14).
//!
//! All sweeps drive the estimation + propagation stages through `fg_core::Pipeline`,
//! so any estimator × propagator combination can be measured; the propagation backend
//! defaults to LinBP (the paper's setting) and can be swapped per sweep.
//!
//! Estimator cells that share a seeded graph also share one `EstimationContext`: the
//! context is warmed to the largest summary any estimator in the set needs, so the
//! `O(m·k·ℓmax)` summarization runs exactly once per (fraction, repetition) cell group
//! no matter how many estimators are compared (the paper's "estimation is cheap
//! preprocessing" claim, applied to the whole sweep).

use crate::harness::ExperimentTable;
use fg_core::prelude::*;
use fg_core::Result;
use fg_graph::{CompatibilityMatrix, FactorConfig};
use fg_propagation::registry;
use fg_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

/// The estimator families compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Gold standard: measured from the fully labeled graph.
    GoldStandard,
    /// Linear compatibility estimation (Eq. 8).
    Lce,
    /// Myopic compatibility estimation (Eq. 12).
    Mce,
    /// Distant compatibility estimation, single start (Eq. 13/14).
    Dce,
    /// DCE with restarts (Section 4.8).
    Dcer,
    /// The Holdout baseline (Eq. 7).
    Holdout,
    /// Two-value heuristic (Appendix E.1).
    Heuristic,
}

impl EstimatorKind {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::GoldStandard => "GS",
            EstimatorKind::Lce => "LCE",
            EstimatorKind::Mce => "MCE",
            EstimatorKind::Dce => "DCE",
            EstimatorKind::Dcer => "DCEr",
            EstimatorKind::Holdout => "Holdout",
            EstimatorKind::Heuristic => "Heuristic",
        }
    }

    /// The default comparison set used in the accuracy figures (Holdout excluded because
    /// it is orders of magnitude slower; add it explicitly where the paper does).
    pub fn standard_set() -> Vec<EstimatorKind> {
        vec![
            EstimatorKind::GoldStandard,
            EstimatorKind::Lce,
            EstimatorKind::Mce,
            EstimatorKind::Dce,
            EstimatorKind::Dcer,
        ]
    }
}

/// Build a concrete estimator for a kind, given the ground-truth labeling (needed only
/// by the GS and Heuristic baselines).
pub fn estimator_set(
    kinds: &[EstimatorKind],
    labeling: &Labeling,
    gold: &DenseMatrix,
) -> Vec<(EstimatorKind, Box<dyn CompatibilityEstimator>)> {
    kinds
        .iter()
        .map(|&kind| {
            let est: Box<dyn CompatibilityEstimator> = match kind {
                EstimatorKind::GoldStandard => Box::new(GoldStandard::new(labeling.clone())),
                EstimatorKind::Lce => Box::new(LinearCompatibilityEstimation::default()),
                EstimatorKind::Mce => Box::new(MyopicCompatibilityEstimation::default()),
                EstimatorKind::Dce => Box::new(DistantCompatibilityEstimation::default()),
                EstimatorKind::Dcer => Box::new(DceWithRestarts::default()),
                EstimatorKind::Holdout => Box::new(HoldoutEstimation::default()),
                EstimatorKind::Heuristic => {
                    // The measured gold standard is row-stochastic but (under class
                    // imbalance) not exactly doubly stochastic; project it onto the
                    // doubly-stochastic polytope (clamping away negatives) so the
                    // heuristic sees the same high/low structure the paper assumes.
                    let gold_matrix = project_gold_for_heuristic(gold);
                    Box::new(
                        TwoValueHeuristic::new(gold_matrix, 0.5).expect("0.5 is a valid spread"),
                    )
                }
            };
            (kind, est)
        })
        .collect()
}

/// Project the measured (row-stochastic) gold standard onto a valid symmetric
/// doubly-stochastic compatibility matrix: symmetrize, clamp a small positive floor, and
/// run Sinkhorn–Knopp row/column scalings. Preserves which entries are high vs low,
/// which is all the two-value heuristic needs.
fn project_gold_for_heuristic(gold: &DenseMatrix) -> CompatibilityMatrix {
    let k = gold.rows();
    let mut m = gold.add(&gold.transpose()).expect("same shape").scaled(0.5);
    for v in m.data_mut() {
        *v = v.max(1e-4);
    }
    for _ in 0..500 {
        m = m.row_normalized();
        m = m.transpose().row_normalized().transpose();
    }
    let sym = m.add(&m.transpose()).expect("same shape").scaled(0.5);
    CompatibilityMatrix::new(sym)
        .unwrap_or_else(|_| CompatibilityMatrix::uniform(k).expect("k > 0"))
}

/// Warm a shared estimation context to the largest summary any estimator in the set
/// requires (per counting mode), so the whole comparison summarizes the graph exactly
/// once per mode — shorter-prefix and other-variant requests then hit the cache.
/// Takes the estimators that will actually run, so the warmed prefix can never drift
/// from the measured set.
pub fn warm_context_for<'e, I>(ctx: &EstimationContext<'_>, estimators: I) -> Result<()>
where
    I: IntoIterator<Item = &'e (dyn CompatibilityEstimator + 'e)>,
{
    // Index 0: plain paths, index 1: non-backtracking.
    let mut max_length = [0usize; 2];
    for estimator in estimators {
        if let Some(config) = estimator.summary_requirements() {
            let mode = usize::from(config.non_backtracking);
            max_length[mode] = max_length[mode].max(config.max_length);
        }
    }
    for (mode, &length) in max_length.iter().enumerate() {
        if length > 0 {
            ctx.warm(&SummaryConfig {
                max_length: length,
                non_backtracking: mode == 1,
                variant: NormalizationVariant::default(),
                ..SummaryConfig::default()
            })?;
        }
    }
    Ok(())
}

/// One measured point of an estimator sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Label fraction `f`.
    pub fraction: f64,
    /// Estimator name (owned, so sweeps can attach parameterized labels).
    pub estimator: String,
    /// Propagation backend used for the end-to-end accuracy.
    pub propagator: String,
    /// End-to-end macro accuracy over the unlabeled nodes.
    pub accuracy: f64,
    /// L2 distance of the estimate from the gold standard; `None` when the
    /// propagation backend ignores `H` and the estimation stage was skipped.
    pub l2_error: Option<f64>,
    /// Wall-clock time of the estimation step.
    pub estimation_time: Duration,
}

/// Run an accuracy-vs-label-sparsity sweep with LinBP (the paper's setting): for every
/// fraction and estimator, sample a stratified seed set, estimate `H`, propagate, and
/// record accuracy, L2 error and estimation time.
pub fn accuracy_vs_sparsity(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    kinds: &[EstimatorKind],
    repetitions: usize,
    seed: u64,
) -> Result<Vec<SweepOutcome>> {
    accuracy_vs_sparsity_with(
        graph,
        labeling,
        fractions,
        kinds,
        &LinBp::default(),
        repetitions,
        seed,
    )
}

/// [`accuracy_vs_sparsity`] with an explicit propagation backend, so figure binaries
/// can sweep estimators under any `Propagator` implementation.
pub fn accuracy_vs_sparsity_with(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    kinds: &[EstimatorKind],
    propagator: &dyn Propagator,
    repetitions: usize,
    seed: u64,
) -> Result<Vec<SweepOutcome>> {
    accuracy_vs_sparsity_stored(
        graph,
        labeling,
        fractions,
        kinds,
        propagator,
        repetitions,
        seed,
        None,
    )
}

/// [`accuracy_vs_sparsity_with`] backed by a persistent [`SummaryStore`]: every
/// `(fraction, repetition)` cell group's context uses the store as a
/// read-through / write-back tier, so a re-run of the same sweep (same graph, same
/// `seed` — the per-cell seed sets are derived deterministically from it) answers
/// every summarization from disk. Outcomes are bit-identical with or without a
/// store.
#[allow(clippy::too_many_arguments)]
pub fn accuracy_vs_sparsity_stored(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    kinds: &[EstimatorKind],
    propagator: &dyn Propagator,
    repetitions: usize,
    seed: u64,
    store: Option<&Arc<SummaryStore>>,
) -> Result<Vec<SweepOutcome>> {
    let gold = measure_compatibilities(graph, labeling)?;
    let estimators = estimator_set(kinds, labeling, &gold);
    let mut outcomes = Vec::new();
    for (fi, &fraction) in fractions.iter().enumerate() {
        for rep in 0..repetitions.max(1) {
            let mut rng = StdRng::seed_from_u64(seed ^ ((fi as u64) << 32) ^ rep as u64);
            let seeds = labeling.stratified_sample(fraction, &mut rng);
            // All estimators in this cell group share one cached graph summary
            // (unless the backend ignores H, in which case estimation is skipped
            // entirely and warming would be wasted work).
            let mut ctx = EstimationContext::new(graph, &seeds);
            if let Some(store) = store {
                ctx = ctx.store(Arc::clone(store));
            }
            if propagator.uses_compatibilities() {
                warm_context_for(&ctx, estimators.iter().map(|(_, e)| e.as_ref()))?;
            }
            for (kind, estimator) in &estimators {
                let report = Pipeline::on(graph)
                    .seeds(&seeds)
                    .context(&ctx)
                    .estimator(estimator)
                    .estimator_label(kind.name())
                    .propagator(propagator)
                    .run()?;
                // When the backend ignores H the pipeline skips estimation and the
                // consumed matrix is a uniform placeholder — there is no estimator
                // L2 error to report.
                let l2_error = if propagator.uses_compatibilities() {
                    Some(report.estimated_h.frobenius_distance(&gold)?)
                } else {
                    None
                };
                outcomes.push(SweepOutcome {
                    fraction,
                    accuracy: report.accuracy(labeling, &seeds),
                    l2_error,
                    estimation_time: report.estimation_time,
                    estimator: report.estimator,
                    propagator: report.propagator,
                });
            }
        }
    }
    Ok(outcomes)
}

/// Distribute independent sweep cells across `threads` scoped worker threads via
/// the shared atomic work queue of
/// [`fg_sparse::run_ordered_cells`], reassembling the
/// per-cell results in their original order. Each cell is re-derived from its index
/// alone (seeded RNGs are rebuilt per cell), so the output is identical to the
/// serial loop regardless of which worker picks up which cell.
pub fn run_cells_parallel<T, F>(cell_count: usize, threads: Threads, run_cell: F) -> Result<Vec<T>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    fg_sparse::run_ordered_cells(cell_count, threads, run_cell)
}

/// [`accuracy_vs_sparsity_with`] distributing the independent (fraction × repetition)
/// cell groups across worker threads. Each group runs its whole estimator comparison
/// against one shared [`EstimationContext`] — the same summary-sharing the serial
/// sweep does — and every group reseeds its RNG from its own indices, exactly as the
/// serial loop does, so the returned outcomes are identical to the serial ones (in
/// the same order); only the wall-clock timing fields can differ.
#[allow(clippy::too_many_arguments)]
pub fn accuracy_vs_sparsity_parallel(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    kinds: &[EstimatorKind],
    propagator: &(dyn Propagator + Sync),
    repetitions: usize,
    seed: u64,
    threads: Threads,
) -> Result<Vec<SweepOutcome>> {
    accuracy_vs_sparsity_parallel_stored(
        graph,
        labeling,
        fractions,
        kinds,
        propagator,
        repetitions,
        seed,
        threads,
        None,
    )
}

/// [`accuracy_vs_sparsity_parallel`] backed by a persistent [`SummaryStore`]
/// (the parallel counterpart of [`accuracy_vs_sparsity_stored`]): each worker's cell
/// group reads and writes the shared store, so a repeated sweep over the same
/// `(graph, seeds)` cells is served from disk no matter which worker owned the cell
/// on the previous run. Outcomes stay identical to the serial, store-less sweep.
#[allow(clippy::too_many_arguments)]
pub fn accuracy_vs_sparsity_parallel_stored(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    kinds: &[EstimatorKind],
    propagator: &(dyn Propagator + Sync),
    repetitions: usize,
    seed: u64,
    threads: Threads,
    store: Option<&Arc<SummaryStore>>,
) -> Result<Vec<SweepOutcome>> {
    if threads.count() <= 1 {
        return accuracy_vs_sparsity_stored(
            graph,
            labeling,
            fractions,
            kinds,
            propagator,
            repetitions,
            seed,
            store,
        );
    }
    let gold = measure_compatibilities(graph, labeling)?;
    let reps = repetitions.max(1);
    // Group layout mirrors the serial loop nesting: fraction, then repetition; the
    // estimators of one group run together so they can share a summary.
    let mut groups = Vec::with_capacity(fractions.len() * reps);
    for fi in 0..fractions.len() {
        for rep in 0..reps {
            groups.push((fi, rep));
        }
    }
    let per_group: Vec<Vec<SweepOutcome>> = run_cells_parallel(groups.len(), threads, |cell| {
        let (fi, rep) = groups[cell];
        let fraction = fractions[fi];
        let mut rng = StdRng::seed_from_u64(seed ^ ((fi as u64) << 32) ^ rep as u64);
        let seeds = labeling.stratified_sample(fraction, &mut rng);
        let estimators = estimator_set(kinds, labeling, &gold);
        let mut ctx = EstimationContext::new(graph, &seeds);
        if let Some(store) = store {
            ctx = ctx.store(Arc::clone(store));
        }
        if propagator.uses_compatibilities() {
            warm_context_for(&ctx, estimators.iter().map(|(_, e)| e.as_ref()))?;
        }
        let mut outcomes = Vec::with_capacity(estimators.len());
        for (kind, estimator) in &estimators {
            let report = Pipeline::on(graph)
                .seeds(&seeds)
                .context(&ctx)
                .estimator(estimator)
                .estimator_label(kind.name())
                .propagator(propagator)
                .run()?;
            let l2_error = if propagator.uses_compatibilities() {
                Some(report.estimated_h.frobenius_distance(&gold)?)
            } else {
                None
            };
            outcomes.push(SweepOutcome {
                fraction,
                accuracy: report.accuracy(labeling, &seeds),
                l2_error,
                estimation_time: report.estimation_time,
                estimator: report.estimator,
                propagator: report.propagator,
            });
        }
        Ok(outcomes)
    })?;
    Ok(per_group.into_iter().flatten().collect())
}

/// Convenience wrapper returning only L2 errors (the Fig. 6e / Fig. 14 metric).
pub fn l2_vs_sparsity(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    kinds: &[EstimatorKind],
    repetitions: usize,
    seed: u64,
) -> Result<Vec<SweepOutcome>> {
    accuracy_vs_sparsity(graph, labeling, fractions, kinds, repetitions, seed)
}

/// One measured point of a graph-construction sweep.
#[derive(Debug, Clone)]
pub struct ConstructionOutcome {
    /// Rendered builder name (round-trips through the construction registry).
    pub builder: String,
    /// Nodes of the constructed graph.
    pub nodes: usize,
    /// Undirected edges of the constructed graph.
    pub edges: usize,
    /// End-to-end macro accuracy over the unlabeled nodes.
    pub accuracy: f64,
    /// Wall-clock time of the graph construction (shared by every repetition of
    /// one builder — the graph is built once and reused).
    pub construction_time: Duration,
}

/// Compare graph-construction backends on one labeled feature matrix: every spec is
/// resolved through the `fg_datasets` construction registry, builds a graph from
/// `features` once, and the constructed graph is classified end-to-end (stratified
/// seed sample → estimator → LinBP) `repetitions` times. The seed draws are derived
/// from the repetition index alone, so every builder is scored against the *same*
/// seed sets — the comparison is paired, and accuracy differences come from the
/// graph alone.
pub fn accuracy_vs_construction(
    features: &DenseMatrix,
    labeling: &Labeling,
    specs: &[&str],
    kind: EstimatorKind,
    fraction: f64,
    repetitions: usize,
    seed: u64,
) -> Result<Vec<ConstructionOutcome>> {
    let mut outcomes = Vec::new();
    for spec in specs {
        let builder =
            fg_datasets::construction_by_name(spec).map_err(fg_core::CoreError::InvalidConfig)?;
        let (graph, construction_time) = {
            let start = std::time::Instant::now();
            let graph = builder.build(features)?;
            (graph, start.elapsed())
        };
        let gold = measure_compatibilities(&graph, labeling)?;
        let estimators = estimator_set(&[kind], labeling, &gold);
        let (kind, estimator) = &estimators[0];
        for rep in 0..repetitions.max(1) {
            let mut rng = StdRng::seed_from_u64(seed ^ rep as u64);
            let seeds = labeling.stratified_sample(fraction, &mut rng);
            let report = Pipeline::on(&graph)
                .seeds(&seeds)
                .estimator(estimator)
                .estimator_label(kind.name())
                .propagator(LinBp::default())
                .run()?;
            outcomes.push(ConstructionOutcome {
                builder: builder.name(),
                nodes: graph.num_nodes(),
                edges: graph.num_edges(),
                accuracy: report.accuracy(labeling, &seeds),
                construction_time,
            });
        }
    }
    Ok(outcomes)
}

/// Aggregate construction-sweep outcomes into a table: one row per builder (in
/// first-appearance order), averaging accuracy over repetitions.
pub fn construction_to_table(name: &str, outcomes: &[ConstructionOutcome]) -> ExperimentTable {
    let mut builders: Vec<&str> = Vec::new();
    for o in outcomes {
        if !builders.contains(&o.builder.as_str()) {
            builders.push(&o.builder);
        }
    }
    let mut table = ExperimentTable::new(
        name,
        &["builder", "nodes", "edges", "accuracy", "construct_s"],
    );
    for builder in builders {
        let matching: Vec<&ConstructionOutcome> =
            outcomes.iter().filter(|o| o.builder == builder).collect();
        let mean = matching.iter().map(|o| o.accuracy).sum::<f64>() / matching.len() as f64;
        let first = matching[0];
        table.push_row(vec![
            builder.to_string(),
            first.nodes.to_string(),
            first.edges.to_string(),
            format!("{mean:.3}"),
            format!("{:.4}", first.construction_time.as_secs_f64()),
        ]);
    }
    table
}

/// One measured point of a propagation-backend sweep.
#[derive(Debug, Clone)]
pub struct BackendOutcome {
    /// Label fraction `f`.
    pub fraction: f64,
    /// Propagation backend name.
    pub propagator: String,
    /// Macro accuracy over the unlabeled nodes.
    pub accuracy: f64,
    /// Iterations the backend executed.
    pub iterations: usize,
    /// Whether the backend converged before its iteration budget.
    pub converged: bool,
    /// Wall-clock time of the propagation step.
    pub propagation_time: Duration,
}

/// Compare propagation backends (looked up by registry name) at several label
/// fractions, holding the compatibility input fixed at the measured gold standard —
/// isolating propagation quality from estimation quality, as in Fig. 6i.
pub fn accuracy_vs_backend(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    backends: &[&str],
    repetitions: usize,
    seed: u64,
) -> Result<Vec<BackendOutcome>> {
    let gold = measure_compatibilities(graph, labeling)?;
    // Resolve every backend up front so a typo'd name fails before any work runs.
    let resolved: Vec<_> = backends
        .iter()
        .map(|name| {
            registry::by_name(name).ok_or_else(|| {
                fg_core::CoreError::InvalidConfig(format!("unknown propagation backend '{name}'"))
            })
        })
        .collect::<Result<_>>()?;
    let mut outcomes = Vec::new();
    for (fi, &fraction) in fractions.iter().enumerate() {
        for rep in 0..repetitions.max(1) {
            let mut rng = StdRng::seed_from_u64(seed ^ ((fi as u64) << 32) ^ rep as u64);
            let seeds = labeling.stratified_sample(fraction, &mut rng);
            for propagator in &resolved {
                let report = Pipeline::on(graph)
                    .seeds(&seeds)
                    .compatibilities("GS", &gold)
                    .propagator(propagator)
                    .run()?;
                outcomes.push(BackendOutcome {
                    fraction,
                    accuracy: report.accuracy(labeling, &seeds),
                    iterations: report.outcome.iterations,
                    converged: report.outcome.converged,
                    propagation_time: report.propagation_time,
                    propagator: report.propagator,
                });
            }
        }
    }
    Ok(outcomes)
}

/// [`accuracy_vs_backend`] distributing the independent (fraction × repetition ×
/// backend) sweep cells across worker threads. Identical outcomes to the serial
/// sweep, in the same order; only the wall-clock timing fields can differ.
pub fn accuracy_vs_backend_parallel(
    graph: &Graph,
    labeling: &Labeling,
    fractions: &[f64],
    backends: &[&str],
    repetitions: usize,
    seed: u64,
    threads: Threads,
) -> Result<Vec<BackendOutcome>> {
    if threads.count() <= 1 {
        return accuracy_vs_backend(graph, labeling, fractions, backends, repetitions, seed);
    }
    // Resolve every backend name up front so a typo fails before any work runs.
    for name in backends {
        if registry::canonical_name(name).is_none() {
            return Err(fg_core::CoreError::InvalidConfig(format!(
                "unknown propagation backend '{name}'"
            )));
        }
    }
    let gold = measure_compatibilities(graph, labeling)?;
    let reps = repetitions.max(1);
    let mut cells = Vec::with_capacity(fractions.len() * reps * backends.len());
    for fi in 0..fractions.len() {
        for rep in 0..reps {
            for &backend in backends {
                cells.push((fi, rep, backend));
            }
        }
    }
    run_cells_parallel(cells.len(), threads, |cell| {
        let (fi, rep, backend) = cells[cell];
        let fraction = fractions[fi];
        let mut rng = StdRng::seed_from_u64(seed ^ ((fi as u64) << 32) ^ rep as u64);
        let seeds = labeling.stratified_sample(fraction, &mut rng);
        let propagator = registry::by_name(backend).expect("backend names pre-validated");
        let report = Pipeline::on(graph)
            .seeds(&seeds)
            .compatibilities("GS", &gold)
            .propagator(propagator)
            .run()?;
        Ok(BackendOutcome {
            fraction,
            accuracy: report.accuracy(labeling, &seeds),
            iterations: report.outcome.iterations,
            converged: report.outcome.converged,
            propagation_time: report.propagation_time,
            propagator: report.propagator,
        })
    })
}

/// Aggregate backend-sweep outcomes into a table: one row per fraction, one accuracy
/// column per backend, averaging over repetitions.
pub fn backends_to_table(
    name: &str,
    outcomes: &[BackendOutcome],
    backends: &[&str],
) -> ExperimentTable {
    let mut fractions: Vec<f64> = outcomes.iter().map(|o| o.fraction).collect();
    fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fractions.dedup();
    let display_names: Vec<String> = backends
        .iter()
        .map(|b| {
            registry::by_name(b)
                .map(|p| p.name())
                .unwrap_or_else(|| b.to_string())
        })
        .collect();
    let mut headers = vec!["f".to_string()];
    headers.extend(display_names.iter().cloned());
    let mut table = ExperimentTable {
        name: name.to_string(),
        headers,
        rows: Vec::new(),
    };
    for &f in &fractions {
        let mut row = vec![format!("{f}")];
        for display in &display_names {
            let values: Vec<f64> = outcomes
                .iter()
                .filter(|o| o.fraction == f && &o.propagator == display)
                .map(|o| o.accuracy)
                .collect();
            let mean = if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            row.push(format!("{mean:.3}"));
        }
        table.push_row(row);
    }
    table
}

/// Aggregate sweep outcomes into a table: one row per fraction, one column per
/// estimator, averaging over repetitions. `metric` selects accuracy or L2 error.
pub fn outcomes_to_table(
    name: &str,
    outcomes: &[SweepOutcome],
    kinds: &[EstimatorKind],
    metric: fn(&SweepOutcome) -> f64,
) -> ExperimentTable {
    let mut fractions: Vec<f64> = outcomes.iter().map(|o| o.fraction).collect();
    fractions.sort_by(|a, b| a.partial_cmp(b).unwrap());
    fractions.dedup();
    let mut headers = vec!["f".to_string()];
    headers.extend(kinds.iter().map(|k| k.name().to_string()));
    let mut table = ExperimentTable {
        name: name.to_string(),
        headers,
        rows: Vec::new(),
    };
    for &f in &fractions {
        let mut row = vec![format!("{f}")];
        for kind in kinds {
            let values: Vec<f64> = outcomes
                .iter()
                // Sweeps with a compatibility-free backend record the estimator as
                // e.g. "MCE (skipped)"; strip the notice so those rows still land
                // in the right column.
                .filter(|o| {
                    let label = o
                        .estimator
                        .strip_suffix(" (skipped)")
                        .unwrap_or(&o.estimator);
                    o.fraction == f && label == kind.name()
                })
                .map(metric)
                .collect();
            let mean = if values.is_empty() {
                f64::NAN
            } else {
                values.iter().sum::<f64>() / values.len() as f64
            };
            row.push(format!("{mean:.3}"));
        }
        table.push_row(row);
    }
    table
}

/// One measured point of a counting-rank sweep (`rank == None` is the exact
/// backend baseline every low-rank row is compared against).
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// Spectral rank of the counting backend; `None` for exact counting.
    pub rank: Option<usize>,
    /// Macro accuracy over the unlabeled nodes after LinBP propagation.
    pub accuracy: f64,
    /// Element-wise L2 distance between the estimated `H` and the exact-backend
    /// estimate (0 for the baseline row by construction).
    pub h_l2_vs_exact: f64,
    /// Wall-clock time of the summarization stage (includes the one-time
    /// eigensolve for low-rank rows on a cold cache).
    pub summarize_time: Duration,
}

/// Compare DCE under the exact counting backend against the low-rank spectral
/// backend at each requested rank, on one seeded graph. Every cell runs the
/// full estimate-then-propagate pipeline, so the sweep measures the end-to-end
/// accuracy cost of rank truncation — the empirical side of the
/// `accuracy_vs_rank` acceptance gate (some `r ≤ 64` within a couple of points
/// of exact).
pub fn accuracy_vs_rank(
    graph: &Graph,
    labeling: &Labeling,
    fraction: f64,
    ranks: &[usize],
    seed: u64,
) -> Result<Vec<RankOutcome>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let seeds = labeling.stratified_sample(fraction, &mut rng);
    let mut outcomes = Vec::with_capacity(ranks.len() + 1);
    let mut exact_h: Option<DenseMatrix> = None;
    for rank in std::iter::once(None).chain(ranks.iter().copied().map(Some)) {
        let mut config = DceConfig::default();
        if let Some(r) = rank {
            config.backend = CountingBackend::LowRank(FactorConfig::with_rank(r));
        }
        let report = Pipeline::on(graph)
            .seeds(&seeds)
            .estimator(DistantCompatibilityEstimation::new(config))
            .propagator(LinBp::default())
            .run()?;
        let h_l2_vs_exact = match &exact_h {
            None => {
                exact_h = Some(report.estimated_h.clone());
                0.0
            }
            Some(h) => report.l2_from(h)?,
        };
        outcomes.push(RankOutcome {
            rank,
            accuracy: report.accuracy(labeling, &seeds),
            h_l2_vs_exact,
            summarize_time: report.summarize_time,
        });
    }
    Ok(outcomes)
}

/// Aggregate rank-sweep outcomes into a table: one row per backend, exact first.
pub fn ranks_to_table(name: &str, outcomes: &[RankOutcome]) -> ExperimentTable {
    let mut table = ExperimentTable::new(
        name,
        &["backend", "accuracy", "h_l2_vs_exact", "summarize_s"],
    );
    for o in outcomes {
        table.push_row(vec![
            match o.rank {
                None => "exact".to_string(),
                Some(r) => format!("rank={r}"),
            },
            format!("{:.3}", o.accuracy),
            format!("{:.4}", o.h_l2_vs_exact),
            format!("{:.4}", o.summarize_time.as_secs_f64()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_all_combinations() {
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let syn = generate(&cfg, &mut rng).unwrap();
        let kinds = [
            EstimatorKind::GoldStandard,
            EstimatorKind::Mce,
            EstimatorKind::Dcer,
        ];
        let outcomes =
            accuracy_vs_sparsity(&syn.graph, &syn.labeling, &[0.05, 0.2], &kinds, 1, 7).unwrap();
        assert_eq!(outcomes.len(), 2 * kinds.len());
        for o in &outcomes {
            assert!(o.accuracy >= 0.0 && o.accuracy <= 1.0);
            assert!(o.l2_error.unwrap() >= 0.0);
            assert_eq!(o.propagator, "LinBP");
        }
        let table = outcomes_to_table("unit_sweep", &outcomes, &kinds, |o| o.accuracy);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.headers.len(), 1 + kinds.len());
    }

    #[test]
    fn sweep_accepts_any_propagation_backend() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&cfg, &mut rng).unwrap();
        let kinds = [EstimatorKind::Mce];
        let outcomes = accuracy_vs_sparsity_with(
            &syn.graph,
            &syn.labeling,
            &[0.2],
            &kinds,
            &RandomWalk::default(),
            1,
            5,
        )
        .unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].propagator, "RandomWalk");
        // The estimation stage is skipped for a compatibility-free backend: the
        // label records it and there is no estimator L2 error.
        assert_eq!(outcomes[0].estimator, "MCE (skipped)");
        assert!(outcomes[0].l2_error.is_none());
        // The "(skipped)" notice must not knock the row out of its table column.
        let table = outcomes_to_table("unit_skip", &outcomes, &kinds, |o| o.accuracy);
        assert_ne!(table.rows[0][1], "NaN");
    }

    #[test]
    fn backend_sweep_covers_registry_backends() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let syn = generate(&cfg, &mut rng).unwrap();
        let backends = ["linbp", "harmonic", "rw"];
        let outcomes =
            accuracy_vs_backend(&syn.graph, &syn.labeling, &[0.1, 0.3], &backends, 1, 11).unwrap();
        assert_eq!(outcomes.len(), 2 * backends.len());
        for o in &outcomes {
            assert!(o.iterations >= 1);
            assert!((0.0..=1.0).contains(&o.accuracy));
        }
        let table = backends_to_table("unit_backends", &outcomes, &backends);
        assert_eq!(table.rows.len(), 2);
        assert_eq!(table.headers, vec!["f", "LinBP", "Harmonic", "RandomWalk"]);
        assert!(accuracy_vs_backend(&syn.graph, &syn.labeling, &[0.1], &["nope"], 1, 1).is_err());
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let syn = generate(&cfg, &mut rng).unwrap();
        let kinds = [EstimatorKind::GoldStandard, EstimatorKind::Mce];
        let fractions = [0.05, 0.2];
        let serial =
            accuracy_vs_sparsity(&syn.graph, &syn.labeling, &fractions, &kinds, 2, 13).unwrap();
        for threads in [Threads::Serial, Threads::Fixed(2), Threads::Fixed(4)] {
            let parallel = accuracy_vs_sparsity_parallel(
                &syn.graph,
                &syn.labeling,
                &fractions,
                &kinds,
                &LinBp::default(),
                2,
                13,
                threads,
            )
            .unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.fraction, p.fraction, "{threads:?}");
                assert_eq!(s.estimator, p.estimator, "{threads:?}");
                assert_eq!(s.propagator, p.propagator, "{threads:?}");
                assert_eq!(s.accuracy, p.accuracy, "{threads:?}");
                assert_eq!(s.l2_error, p.l2_error, "{threads:?}");
            }
        }
    }

    #[test]
    fn parallel_backend_sweep_matches_serial_exactly() {
        let cfg = GeneratorConfig::balanced(250, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(29);
        let syn = generate(&cfg, &mut rng).unwrap();
        let backends = ["linbp", "harmonic", "rw"];
        let serial =
            accuracy_vs_backend(&syn.graph, &syn.labeling, &[0.1, 0.3], &backends, 2, 31).unwrap();
        let parallel = accuracy_vs_backend_parallel(
            &syn.graph,
            &syn.labeling,
            &[0.1, 0.3],
            &backends,
            2,
            31,
            Threads::Fixed(4),
        )
        .unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.fraction, p.fraction);
            assert_eq!(s.propagator, p.propagator);
            assert_eq!(s.accuracy, p.accuracy);
            assert_eq!(s.iterations, p.iterations);
            assert_eq!(s.converged, p.converged);
        }
        // Unknown backends fail up front, before any worker runs.
        assert!(accuracy_vs_backend_parallel(
            &syn.graph,
            &syn.labeling,
            &[0.1],
            &["nope"],
            1,
            1,
            Threads::Fixed(2)
        )
        .is_err());
    }

    #[test]
    fn stored_sweep_is_identical_and_second_run_hits_disk() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(51);
        let syn = generate(&cfg, &mut rng).unwrap();
        let kinds = [EstimatorKind::Mce, EstimatorKind::Dcer];
        let fractions = [0.05, 0.2];
        let dir = std::env::temp_dir().join("fg_sweep_store");
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(SummaryStore::open(&dir).unwrap());

        let plain =
            accuracy_vs_sparsity(&syn.graph, &syn.labeling, &fractions, &kinds, 1, 17).unwrap();
        for threads in [Threads::Serial, Threads::Fixed(2)] {
            let stored = accuracy_vs_sparsity_parallel_stored(
                &syn.graph,
                &syn.labeling,
                &fractions,
                &kinds,
                &LinBp::default(),
                1,
                17,
                threads,
                Some(&store),
            )
            .unwrap();
            // Persisting summaries never changes a sweep outcome.
            assert_eq!(plain.len(), stored.len());
            for (p, s) in plain.iter().zip(&stored) {
                assert_eq!(p.estimator, s.estimator, "{threads:?}");
                assert_eq!(p.accuracy, s.accuracy, "{threads:?}");
                assert_eq!(p.l2_error, s.l2_error, "{threads:?}");
            }
        }
        // One summary per (fraction, repetition) cell group, plus one persisted
        // H estimate per content-addressable estimator in each group.
        let entries = store.entries().unwrap();
        let count_suffix =
            |suffix: &str| entries.iter().filter(|e| e.file.ends_with(suffix)).count();
        assert_eq!(count_suffix(".fgsum"), fractions.len());
        assert_eq!(count_suffix(".fgh"), fractions.len() * kinds.len());
        // A repeated sweep cell is served from disk: rebuilding one cell's context
        // against the store answers its warm-up without any computation.
        // The first cell's RNG seed: sweep seed 17, fraction index 0, repetition 0.
        let mut rng = StdRng::seed_from_u64(17);
        let seeds = syn.labeling.stratified_sample(fractions[0], &mut rng);
        let ctx = EstimationContext::new(&syn.graph, &seeds).store(Arc::clone(&store));
        ctx.warm(&SummaryConfig::with_max_length(5)).unwrap();
        assert_eq!(ctx.summary_computations(), 0);
        assert_eq!(ctx.store_hits(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cell_group_with_mce_dce_dcer_summarizes_exactly_once() {
        // Acceptance criterion: a sweep cell that evaluates MCE + DCE + DCEr on one
        // seeded graph calls summarize exactly once (counter on the shared cache).
        let cfg = GeneratorConfig::balanced(400, 10.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = syn.labeling.stratified_sample(0.05, &mut rng);
        let gold = measure_compatibilities(&syn.graph, &syn.labeling).unwrap();
        let kinds = [EstimatorKind::Mce, EstimatorKind::Dce, EstimatorKind::Dcer];
        let estimators = estimator_set(&kinds, &syn.labeling, &gold);

        let ctx = EstimationContext::new(&syn.graph, &seeds);
        warm_context_for(&ctx, estimators.iter().map(|(_, e)| e.as_ref())).unwrap();
        for (_, estimator) in &estimators {
            // Context-served estimates must equal the standalone ones bit-for-bit.
            let cached = estimator.estimate_with_context(&ctx).unwrap();
            let fresh = estimator.estimate(&syn.graph, &seeds).unwrap();
            assert_eq!(cached.data(), fresh.data(), "{}", estimator.name());
        }
        assert_eq!(ctx.summary_computations(), 1);
    }

    #[test]
    fn construction_sweep_scores_builders_on_shared_seed_draws() {
        let config = fg_datasets::BlobConfig {
            nodes: 120,
            classes: 3,
            dims: 4,
            spread: 1.2,
            spread_skew: 1.0,
            seed: 5,
        };
        let (features, labeling) = fg_datasets::synthesize_blobs(&config).unwrap();
        let specs = ["Knn(k=6)", "Knn(k=6,weighting=heat)"];
        let outcomes =
            accuracy_vs_construction(&features, &labeling, &specs, EstimatorKind::Mce, 0.1, 2, 9)
                .unwrap();
        assert_eq!(outcomes.len(), specs.len() * 2);
        for o in &outcomes {
            assert!((0.0..=1.0).contains(&o.accuracy));
            assert!(o.edges > 0);
            assert_eq!(o.nodes, 120);
        }
        let table = construction_to_table("unit_construction", &outcomes);
        assert_eq!(table.rows.len(), specs.len());
        assert!(table.rows[0][0].starts_with("Knn(k=6,"));
        // Unknown builders fail before any work runs.
        assert!(accuracy_vs_construction(
            &features,
            &labeling,
            &["nope"],
            EstimatorKind::Mce,
            0.1,
            1,
            1
        )
        .is_err());
    }

    #[test]
    fn estimator_kind_names() {
        assert_eq!(EstimatorKind::Dcer.name(), "DCEr");
        assert_eq!(EstimatorKind::standard_set().len(), 5);
    }

    #[test]
    fn estimator_set_builds_all_kinds() {
        let labeling = Labeling::new(vec![0, 1, 2, 0, 1, 2], 3).unwrap();
        let gold = CompatibilityMatrix::h_skew(3, 3.0).unwrap().into_dense();
        let kinds = [
            EstimatorKind::GoldStandard,
            EstimatorKind::Lce,
            EstimatorKind::Mce,
            EstimatorKind::Dce,
            EstimatorKind::Dcer,
            EstimatorKind::Holdout,
            EstimatorKind::Heuristic,
        ];
        let set = estimator_set(&kinds, &labeling, &gold);
        assert_eq!(set.len(), 7);
        assert_eq!(set[6].1.name(), "Heuristic");
    }

    #[test]
    fn rank_sweep_compares_backends_against_the_exact_baseline() {
        let cfg = GeneratorConfig::balanced(300, 8.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let synthetic = generate(&cfg, &mut rng).unwrap();
        let outcomes =
            accuracy_vs_rank(&synthetic.graph, &synthetic.labeling, 0.2, &[8, 16], 11).unwrap();
        assert_eq!(outcomes.len(), 3);
        // The baseline row is the exact backend and anchors the L2 column.
        assert_eq!(outcomes[0].rank, None);
        assert_eq!(outcomes[0].h_l2_vs_exact, 0.0);
        for o in &outcomes {
            assert!((0.0..=1.0).contains(&o.accuracy), "accuracy out of range");
            assert!(o.h_l2_vs_exact.is_finite());
        }
        let table = ranks_to_table("unit_ranks", &outcomes);
        assert_eq!(table.rows.len(), 3);
        assert_eq!(table.rows[0][0], "exact");
        assert_eq!(table.rows[2][0], "rank=16");
    }
}
