//! Kernel micro-benchmarks with a built-in bit-identity oracle, feeding the
//! committed `BENCH_kernels.json` trajectory at the repository root.
//!
//! Two report sections:
//!
//! 1. **Blocked vs scalar SpMM** — the monomorphized/blocked
//!    [`fg_sparse::CsrMatrix::spmm_dense_rows_into`] path against the retained
//!    scalar oracle [`fg_sparse::CsrMatrix::spmm_dense_reference`], one row per
//!    RHS width `k`. Before any timing, the outputs are asserted equal **bit
//!    for bit** — a red bench run is a correctness failure, not a perf blip.
//! 2. **Thread-scaling rows** — serial / 2-thread / 4-thread wall-clock for the
//!    dense SpMM (contiguous and nnz-aware layouts, the latter on a hub-heavy
//!    graph) and the full summarize chain at `ℓmax = 5`, each parallel output
//!    asserted bit-identical to its serial run first.
//!
//! The report annotates the detected core count and derives a `gating` mode
//! from it: on hosts with fewer than four cores (CI containers are often
//! single-core) multi-thread "speedups" are fiction, so the committed report
//! says `"structure"` and CI gates only report shape and the bit-identity
//! oracle; on ≥ 4 cores it says `"throughput"` and CI additionally enforces
//! speedup floors.

use fg_core::prelude::*;
use fg_sparse::{CsrMatrix, DenseMatrix, RowBlocking};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::micro::bench_iters;

/// Gating threshold: below this many cores, thread speedups are not measurable.
pub const GATING_MIN_CORES: usize = 4;

/// Logical cores visible to this process (1 if detection fails).
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Report gating mode for a host with `cores` logical cores: `"throughput"`
/// when parallel speedups are measurable, `"structure"` otherwise.
pub fn gating_mode(cores: usize) -> &'static str {
    if cores >= GATING_MIN_CORES {
        "throughput"
    } else {
        "structure"
    }
}

/// Shape of one kernel-bench run.
#[derive(Debug, Clone)]
pub struct KernelBenchConfig {
    /// Nodes in the fig3b-style synthetic graph.
    pub nodes: usize,
    /// Classes (= RHS width of the summarize chain).
    pub classes: usize,
    /// RHS widths measured in the blocked-vs-scalar comparison.
    pub spmm_widths: Vec<usize>,
    /// Timed iterations per measurement.
    pub iters: usize,
}

impl KernelBenchConfig {
    /// The committed-report configuration (fig3b scale, n = 50k).
    pub fn full() -> KernelBenchConfig {
        KernelBenchConfig {
            nodes: 50_000,
            classes: 3,
            spmm_widths: vec![2, 3, 5, 8, 17, 70],
            iters: 10,
        }
    }

    /// A seconds-scale variant for CI smoke runs.
    pub fn smoke() -> KernelBenchConfig {
        KernelBenchConfig {
            nodes: 4_000,
            classes: 3,
            spmm_widths: vec![2, 3, 8, 17, 70],
            iters: 3,
        }
    }
}

/// One blocked-vs-scalar SpMM comparison at RHS width `k` (serial, same graph).
#[derive(Debug, Clone)]
pub struct SpmmComparison {
    /// RHS width.
    pub k: usize,
    /// Mean seconds per scalar-reference multiply.
    pub scalar_s: f64,
    /// Mean seconds per blocked multiply.
    pub blocked_s: f64,
    /// `scalar_s / blocked_s`.
    pub speedup: f64,
}

/// One thread-scaling row: serial / 2-thread / 4-thread mean seconds.
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel label.
    pub kernel: String,
    /// Mean seconds, serial.
    pub serial_s: f64,
    /// Mean seconds, two worker threads.
    pub t2_s: f64,
    /// Mean seconds, four worker threads.
    pub t4_s: f64,
    /// `serial_s / t2_s`.
    pub speedup_2t: f64,
    /// `serial_s / t4_s`.
    pub speedup_4t: f64,
}

impl KernelRow {
    /// Render as one aligned report line.
    pub fn to_line(&self) -> String {
        format!(
            "{:<28} serial {:>10.6}s  2t {:>10.6}s ({:>4.2}x)  4t {:>10.6}s ({:>4.2}x)",
            self.kernel, self.serial_s, self.t2_s, self.speedup_2t, self.t4_s, self.speedup_4t
        )
    }
}

/// The full kernel-bench result: comparisons, scaling rows, and hardware facts.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Blocked-vs-scalar SpMM comparisons, one per RHS width.
    pub comparisons: Vec<SpmmComparison>,
    /// Thread-scaling rows.
    pub rows: Vec<KernelRow>,
    /// Logical cores detected on the measuring host.
    pub cores: usize,
}

/// Dense matrix with seeded pseudo-random entries in `[-1, 1)`.
fn random_dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = DenseMatrix::zeros(rows, cols);
    for v in m.data_mut() {
        *v = rng.gen::<f64>() * 2.0 - 1.0;
    }
    m
}

/// A hub-heavy square CSR: a few rows hold hundreds of entries, many rows are
/// empty — the degree skew that motivates the nnz-aware row blocking.
fn hub_heavy_csr(n: usize, seed: u64) -> CsrMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for r in 0..n {
        let entries = if r % 97 == 0 {
            256.min(n)
        } else if r % 11 == 0 {
            0
        } else {
            4
        };
        for _ in 0..entries {
            triplets.push((r, rng.gen_index(n), 0.1 + 0.9 * rng.gen::<f64>()));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// Assert two dense matrices are equal **bit for bit** (the oracle every
/// measurement passes before it is timed).
fn assert_bit_identical(got: &DenseMatrix, want: &DenseMatrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape diverged");
    assert!(
        got.data()
            .iter()
            .zip(want.data().iter())
            .all(|(a, b)| a.to_bits() == b.to_bits()),
        "{what}: outputs diverged bitwise"
    );
}

/// Measure a thread-scaling row for `f(threads)`, asserting the 2- and 4-thread
/// outputs are bit-identical to the serial output before timing anything.
fn scaling_row(kernel: &str, iters: usize, mut f: impl FnMut(Threads) -> DenseMatrix) -> KernelRow {
    let serial = f(Threads::Serial);
    assert_bit_identical(&f(Threads::Fixed(2)), &serial, kernel);
    assert_bit_identical(&f(Threads::Fixed(4)), &serial, kernel);
    let serial_s = bench_iters(kernel, iters, || f(Threads::Serial))
        .mean
        .as_secs_f64();
    let t2_s = bench_iters(kernel, iters, || f(Threads::Fixed(2)))
        .mean
        .as_secs_f64();
    let t4_s = bench_iters(kernel, iters, || f(Threads::Fixed(4)))
        .mean
        .as_secs_f64();
    KernelRow {
        kernel: kernel.to_string(),
        serial_s,
        t2_s,
        t4_s,
        speedup_2t: serial_s / t2_s,
        speedup_4t: serial_s / t4_s,
    }
}

/// Run every kernel measurement: verify bit-identity, then time.
pub fn run_kernel_bench(cfg: &KernelBenchConfig) -> fg_core::Result<KernelReport> {
    let gen = GeneratorConfig::balanced(cfg.nodes, 5.0, cfg.classes, 8.0)?;
    let mut rng = StdRng::seed_from_u64(3);
    let syn = generate(&gen, &mut rng)?;
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let w = syn.graph.adjacency();

    // Section 1: blocked vs scalar, serial, one comparison per RHS width.
    let mut comparisons = Vec::new();
    for &k in &cfg.spmm_widths {
        let rhs = random_dense(cfg.nodes, k, 17 + k as u64);
        let reference = w.spmm_dense_reference(&rhs)?;
        let blocked = w.spmm_dense_with(&rhs, Threads::Serial)?;
        assert_bit_identical(&blocked, &reference, &format!("spmm_dense k={k}"));
        let scalar_s = bench_iters(&format!("spmm_scalar k={k}"), cfg.iters, || {
            w.spmm_dense_reference(&rhs).unwrap()
        })
        .mean
        .as_secs_f64();
        let blocked_s = bench_iters(&format!("spmm_blocked k={k}"), cfg.iters, || {
            w.spmm_dense_with(&rhs, Threads::Serial).unwrap()
        })
        .mean
        .as_secs_f64();
        comparisons.push(SpmmComparison {
            k,
            scalar_s,
            blocked_s,
            speedup: scalar_s / blocked_s,
        });
    }

    // Section 2: thread scaling on the hot kernels.
    let mut rows = Vec::new();
    let rhs = random_dense(cfg.nodes, cfg.classes, 41);
    rows.push(scaling_row("spmm_dense", cfg.iters, |threads| {
        w.spmm_dense_with(&rhs, threads).unwrap()
    }));

    let hub = hub_heavy_csr(cfg.nodes, 29);
    let hub_rhs = random_dense(cfg.nodes, cfg.classes, 43);
    let contiguous = hub.spmm_dense_blocked(&hub_rhs, Threads::Serial, RowBlocking::Contiguous)?;
    let by_nnz = hub.spmm_dense_blocked(&hub_rhs, Threads::Fixed(4), RowBlocking::ByNnz(4096))?;
    assert_bit_identical(&by_nnz, &contiguous, "spmm_dense hub ByNnz");
    rows.push(scaling_row("spmm_dense_hub_by_nnz", cfg.iters, |threads| {
        hub.spmm_dense_blocked(&hub_rhs, threads, RowBlocking::ByNnz(4096))
            .unwrap()
    }));

    for (label, non_backtracking) in [("summarize_lmax5", false), ("summarize_lmax5_nb", true)] {
        let config = SummaryConfig {
            max_length: 5,
            non_backtracking,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        rows.push(scaling_row(label, cfg.iters, |threads| {
            let summary = summarize_with(&syn.graph, &seeds, &config, threads).unwrap();
            summary.counts.last().unwrap().clone()
        }));
    }

    Ok(KernelReport {
        comparisons,
        rows,
        cores: detected_cores(),
    })
}

/// Render the committed `BENCH_kernels.json` report.
pub fn render_kernel_report(cfg: &KernelBenchConfig, report: &KernelReport) -> String {
    let gating = gating_mode(report.cores);
    let mut out = String::from("{\n  \"bench\": \"kernels\",\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"cores\": {}}},\n  \"gating\": \"{}\",\n",
        report.cores, gating
    ));
    out.push_str(&format!(
        "  \"note\": \"{}\",\n",
        if gating == "structure" {
            "measured on a host with fewer than 4 cores: multi-thread timings are \
             not meaningful, CI gates report structure and the bit-identity oracle only"
        } else {
            "measured on a multi-core host: CI additionally enforces speedup floors"
        }
    ));
    out.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"classes\": {}, \"iters\": {}}},\n",
        cfg.nodes, cfg.classes, cfg.iters
    ));
    out.push_str("  \"spmm_blocked_vs_scalar\": [\n");
    for (index, c) in report.comparisons.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"k\": {}, \"scalar_s\": {:.6}, \"blocked_s\": {:.6}, \"speedup\": {:.2}}}{}\n",
            c.k,
            c.scalar_s,
            c.blocked_s,
            c.speedup,
            if index + 1 < report.comparisons.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ],\n  \"rows\": [\n");
    for (index, row) in report.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"serial_s\": {:.6}, \"t2_s\": {:.6}, \"t4_s\": {:.6}, \"speedup_2t\": {:.2}, \"speedup_4t\": {:.2}}}{}\n",
            row.kernel,
            row.serial_s,
            row.t2_s,
            row.t4_s,
            row.speedup_2t,
            row.speedup_4t,
            if index + 1 < report.rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gating_mode_follows_core_count() {
        assert_eq!(gating_mode(1), "structure");
        assert_eq!(gating_mode(2), "structure");
        assert_eq!(gating_mode(4), "throughput");
        assert_eq!(gating_mode(64), "throughput");
        assert!(detected_cores() >= 1);
    }

    #[test]
    fn kernel_report_renders_parseable_json() {
        let cfg = KernelBenchConfig::smoke();
        let report = KernelReport {
            comparisons: vec![SpmmComparison {
                k: 3,
                scalar_s: 0.002,
                blocked_s: 0.001,
                speedup: 2.0,
            }],
            rows: vec![KernelRow {
                kernel: "spmm_dense".into(),
                serial_s: 0.002,
                t2_s: 0.001,
                t4_s: 0.0008,
                speedup_2t: 2.0,
                speedup_4t: 2.5,
            }],
            cores: 1,
        };
        let rendered = render_kernel_report(&cfg, &report);
        let parsed = fg_serve::Json::parse(&rendered).expect("report must be valid JSON");
        assert_eq!(
            parsed.get("bench").and_then(fg_serve::Json::as_str),
            Some("kernels")
        );
        assert_eq!(
            parsed.get("gating").and_then(fg_serve::Json::as_str),
            Some("structure")
        );
        assert_eq!(
            parsed
                .get("hardware")
                .and_then(|h| h.get("cores"))
                .and_then(fg_serve::Json::as_usize),
            Some(1)
        );
        let rows = parsed
            .get("rows")
            .and_then(fg_serve::Json::as_array)
            .unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("kernel").and_then(fg_serve::Json::as_str),
            Some("spmm_dense")
        );
    }

    #[test]
    fn smoke_bench_passes_its_bit_identity_oracle() {
        let cfg = KernelBenchConfig {
            nodes: 600,
            classes: 3,
            spmm_widths: vec![2, 17],
            iters: 1,
        };
        let report = run_kernel_bench(&cfg).expect("kernel bench");
        assert_eq!(report.comparisons.len(), 2);
        assert_eq!(report.rows.len(), 4);
        assert!(report
            .comparisons
            .iter()
            .all(|c| c.scalar_s > 0.0 && c.blocked_s > 0.0));
        assert!(report.rows.iter().all(|r| r.serial_s > 0.0));
    }
}
