//! Experiment bookkeeping: result tables, CSV output, timing, and scale control.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A rectangular experiment-result table that can be printed to stdout and written as a
/// CSV file under `target/experiments/`.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Experiment identifier (e.g. `"fig3a_sparsity"`).
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Create an empty table.
    pub fn new(name: &str, headers: &[&str]) -> Self {
        ExperimentTable {
            name: name.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already-formatted cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render the table as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(out, "{cell:>width$}  ");
            }
            out.push('\n');
        };
        render_row(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Print the table (with its name as a heading) to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.name);
        print!("{}", self.to_text());
    }

    /// Render the table as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the table as `target/experiments/<name>.csv`, creating the directory if
    /// necessary. Returns the path written to.
    pub fn write_csv(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target").join("experiments");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }

    /// Print the table and write the CSV, logging the output path (errors are reported
    /// but not fatal, so figure binaries always show their numbers).
    pub fn print_and_save(&self) {
        self.print();
        match self.write_csv() {
            Ok(path) => println!("[saved {}]", path.display()),
            Err(e) => println!("[could not save CSV: {e}]"),
        }
    }
}

/// Wall-clock a closure, returning its result and the elapsed time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

/// Global experiment scale factor, read from the `FG_SCALE` environment variable
/// (default 1.0). Figure binaries multiply their node counts by this factor, so
/// `FG_SCALE=0.1 cargo run --bin fig3a_sparsity` gives a fast smoke run and
/// `FG_SCALE=1` the full-size reproduction.
pub fn scale_factor() -> f64 {
    std::env::var("FG_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Scale a node count by [`scale_factor`], keeping a sensible floor.
pub fn scaled_n(base: usize) -> usize {
    ((base as f64 * scale_factor()).round() as usize).max(200)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_text_and_csv_rendering() {
        let mut t = ExperimentTable::new("unit_test_table", &["f", "GS", "DCEr"]);
        t.push_row(vec!["0.01".into(), "0.85".into(), "0.84".into()]);
        t.push_row(vec!["0.10".into(), "0.90".into(), "0.90".into()]);
        let text = t.to_text();
        assert!(text.contains("DCEr"));
        assert!(text.contains("0.85"));
        let csv = t.to_csv();
        assert!(csv.starts_with("f,GS,DCEr\n"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_written_to_target() {
        let mut t = ExperimentTable::new("unit_test_write", &["a"]);
        t.push_row(vec!["1".into()]);
        let path = t.write_csv().unwrap();
        assert!(path.exists());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn time_it_measures_something() {
        let (value, elapsed) = time_it(|| (0..10_000).sum::<u64>());
        assert_eq!(value, 49_995_000);
        assert!(elapsed.as_nanos() > 0);
    }

    #[test]
    fn scale_factor_defaults_to_one() {
        // Cannot assume the env var is unset in every environment, but the parsed value
        // must be positive.
        assert!(scale_factor() > 0.0);
        assert!(scaled_n(1000) >= 200);
    }
}
