//! Load generator for the `fg serve` TCP tier: concurrent clients, disjoint
//! datasets, mixed read/mutate streams, latency percentiles — and a built-in
//! bit-identity oracle.
//!
//! Each client drives its **own named dataset** through one TCP connection with a
//! deterministic request stream (load, then cycles of classify / estimate / seed
//! add / estimate / seed remove). Because datasets are disjoint, every client's
//! response stream is a function of its own request history alone — so the
//! measured concurrent run is compared byte-for-byte against a serial replay of
//! the same streams on a fresh session, and any divergence fails the benchmark.
//! That is the serving tier's determinism contract under load, enforced on every
//! bench run.
//!
//! Latency is measured per request (write line → read response line, no
//! pipelining), throughput over the whole concurrent phase. Results land in
//! `BENCH_serve.json` at the repository root (override with `FG_BENCH_OUT`), one
//! row per client count — the start of the serving perf trajectory.

use fg_core::prelude::*;
use fg_serve::{Session, TcpServer};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shape of one load-generation experiment.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Nodes per synthetic per-client graph.
    pub nodes: usize,
    /// Classes per synthetic per-client graph.
    pub classes: usize,
    /// Read/mutate cycles per client (each cycle is 5 requests; a `load` request
    /// per client precedes the cycles).
    pub cycles: usize,
    /// Concurrent-client counts to measure, one result row each.
    pub client_counts: Vec<usize>,
    /// Kernel thread policy for the server session.
    pub threads: Threads,
}

impl ServeLoadConfig {
    /// The committed-report configuration: serial, 2 and 4 concurrent clients.
    pub fn full() -> ServeLoadConfig {
        ServeLoadConfig {
            nodes: 400,
            classes: 3,
            cycles: 8,
            client_counts: vec![1, 2, 4],
            threads: Threads::Serial,
        }
    }

    /// A seconds-scale variant for CI smoke runs (same client counts, tiny
    /// streams and graphs).
    pub fn smoke() -> ServeLoadConfig {
        ServeLoadConfig {
            nodes: 200,
            classes: 3,
            cycles: 2,
            client_counts: vec![1, 2, 4],
            threads: Threads::Serial,
        }
    }

    /// Requests each client sends: one `load` plus five per cycle.
    pub fn requests_per_client(&self) -> usize {
        1 + 5 * self.cycles
    }
}

/// One measured client count.
#[derive(Debug, Clone)]
pub struct LoadRow {
    /// Concurrent clients in this run.
    pub clients: usize,
    /// Total requests served across all clients.
    pub requests: usize,
    /// Wall-clock seconds of the concurrent phase.
    pub seconds: f64,
    /// Requests per second over the concurrent phase.
    pub throughput_rps: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
}

impl LoadRow {
    /// Render as one aligned report line.
    pub fn to_line(&self) -> String {
        format!(
            "serve_load clients={:<2} requests={:<5} {:>8.3}s  {:>9.1} req/s  p50 {:>8.3}ms  p95 {:>8.3}ms  p99 {:>8.3}ms",
            self.clients,
            self.requests,
            self.seconds,
            self.throughput_rps,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms
        )
    }
}

/// Nearest-rank percentile (`p` in `[0, 100]`) over an ascending-sorted slice,
/// in milliseconds. Empty input reports zero.
pub fn percentile_ms(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let index = rank.clamp(1, sorted.len()) - 1;
    sorted[index].as_secs_f64() * 1e3
}

/// One client's synthetic dataset on disk plus the node its mutation cycle
/// toggles.
struct ClientData {
    edges: PathBuf,
    labels: PathBuf,
    mutate_node: usize,
    mutate_label: usize,
}

/// Write client `index`'s synthetic dataset (distinct generator seed per client,
/// so per-client graphs — and therefore cache keys — are fully disjoint).
fn synthesize_client(
    dir: &Path,
    index: usize,
    nodes: usize,
    classes: usize,
) -> io::Result<ClientData> {
    let cfg = GeneratorConfig::balanced(nodes, 8.0, classes, 8.0)
        .map_err(|e| io::Error::other(e.to_string()))?;
    let mut rng = StdRng::seed_from_u64(42 + index as u64);
    let syn = generate(&cfg, &mut rng).map_err(|e| io::Error::other(e.to_string()))?;
    let seeds = syn.labeling.stratified_sample(0.08, &mut rng);
    let edges = dir.join(format!("client{index}_edges.tsv"));
    let labels = dir.join(format!("client{index}_labels.tsv"));
    fg_datasets::write_edge_list(&edges, &syn.graph)
        .map_err(|e| io::Error::other(e.to_string()))?;
    let mut lines = String::new();
    for (node, label) in seeds.as_slice().iter().enumerate() {
        if let Some(c) = label {
            lines.push_str(&format!("{node}\t{c}\n"));
        }
    }
    std::fs::write(&labels, lines)?;
    let mutate_node = seeds.unlabeled_nodes()[0];
    Ok(ClientData {
        edges,
        labels,
        mutate_node,
        mutate_label: syn.labeling.class_of(mutate_node),
    })
}

/// Client `index`'s full deterministic request stream against its own dataset.
fn client_stream(
    index: usize,
    data: &ClientData,
    nodes: usize,
    classes: usize,
    cycles: usize,
) -> Vec<String> {
    let dataset = format!("bench-{index}");
    let mut stream = vec![format!(
        "{{\"cmd\":\"load\",\"dataset\":\"{dataset}\",\"edges\":\"{}\",\"labels\":\"{}\",\"nodes\":{nodes},\"classes\":{classes}}}",
        data.edges.display(),
        data.labels.display()
    )];
    let (node, label) = (data.mutate_node, data.mutate_label);
    for _ in 0..cycles {
        stream.push(format!(
            "{{\"cmd\":\"classify\",\"dataset\":\"{dataset}\",\"method\":\"dcer\"}}"
        ));
        stream.push(format!(
            "{{\"cmd\":\"estimate\",\"dataset\":\"{dataset}\",\"method\":\"dcer\"}}"
        ));
        stream.push(format!(
            "{{\"cmd\":\"seed\",\"dataset\":\"{dataset}\",\"add\":[[{node},{label}]]}}"
        ));
        stream.push(format!(
            "{{\"cmd\":\"estimate\",\"dataset\":\"{dataset}\",\"method\":\"dcer\"}}"
        ));
        stream.push(format!(
            "{{\"cmd\":\"seed\",\"dataset\":\"{dataset}\",\"remove\":[{node}]}}"
        ));
    }
    stream
}

/// Drive one connection request-by-request (write line, read response line),
/// timing each round trip.
fn drive(addr: SocketAddr, requests: &[String]) -> io::Result<(Vec<String>, Vec<Duration>)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(requests.len());
    let mut latencies = Vec::with_capacity(requests.len());
    for request in requests {
        let start = Instant::now();
        writer.write_all(request.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::other("server closed the connection mid-stream"));
        }
        latencies.push(start.elapsed());
        responses.push(line.trim_end().to_string());
    }
    Ok((responses, latencies))
}

/// Run the load experiment: for each client count, replay every client's stream
/// serially on a fresh session (the reference schedule), then run them
/// concurrently on another fresh session, verify per-client byte-identity, and
/// report throughput + latency percentiles of the concurrent phase.
pub fn run_serve_load(cfg: &ServeLoadConfig) -> io::Result<Vec<LoadRow>> {
    let dir = std::env::temp_dir().join(format!("fg_serve_load_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir)?;
    let max_clients = cfg.client_counts.iter().copied().max().unwrap_or(1);
    let streams: Vec<Vec<String>> = (0..max_clients)
        .map(|index| {
            let data = synthesize_client(&dir, index, cfg.nodes, cfg.classes)?;
            Ok(client_stream(
                index,
                &data,
                cfg.nodes,
                cfg.classes,
                cfg.cycles,
            ))
        })
        .collect::<io::Result<_>>()?;

    let mut rows = Vec::new();
    for &clients in &cfg.client_counts {
        // Reference: the same streams, one client at a time, fresh session.
        let serial_session = Arc::new(Session::new(cfg.threads, None));
        let serial_addr = TcpServer::spawn(serial_session, "127.0.0.1:0")?;
        let mut expected = Vec::with_capacity(clients);
        for stream in &streams[..clients] {
            expected.push(drive(serial_addr, stream)?.0);
        }

        // Measured: the same streams concurrently, fresh session.
        let session = Arc::new(Session::new(cfg.threads, None));
        let addr = TcpServer::spawn(session, "127.0.0.1:0")?;
        let started = Instant::now();
        let results: Vec<io::Result<(Vec<String>, Vec<Duration>)>> = std::thread::scope(|scope| {
            streams[..clients]
                .iter()
                .map(|stream| scope.spawn(move || drive(addr, stream)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|handle| handle.join().expect("client thread panicked"))
                .collect()
        });
        let wall = started.elapsed();

        let mut latencies: Vec<Duration> = Vec::new();
        for (index, result) in results.into_iter().enumerate() {
            let (responses, client_latencies) = result?;
            if responses != expected[index] {
                return Err(io::Error::other(format!(
                    "client {index} of {clients}: concurrent responses diverged from the \
                     serial schedule (bit-identity violated)"
                )));
            }
            latencies.extend(client_latencies);
        }
        latencies.sort();
        let requests = clients * cfg.requests_per_client();
        let seconds = wall.as_secs_f64();
        rows.push(LoadRow {
            clients,
            requests,
            seconds,
            throughput_rps: requests as f64 / seconds,
            p50_ms: percentile_ms(&latencies, 50.0),
            p95_ms: percentile_ms(&latencies, 95.0),
            p99_ms: percentile_ms(&latencies, 99.0),
        });
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(rows)
}

/// Render the committed `BENCH_serve.json` report.
///
/// The report embeds the measuring host's core count and a derived `gating`
/// mode (see [`crate::kernels::gating_mode`]): concurrent-throughput floors are
/// only meaningful when the host can actually run clients in parallel, so on
/// sub-4-core hosts the report says `"structure"` and CI skips them.
pub fn render_report(cfg: &ServeLoadConfig, rows: &[LoadRow]) -> String {
    let cores = crate::kernels::detected_cores();
    let mut out = String::from("{\n  \"bench\": \"serve_load\",\n");
    out.push_str(&format!(
        "  \"hardware\": {{\"cores\": {}}},\n  \"gating\": \"{}\",\n",
        cores,
        crate::kernels::gating_mode(cores)
    ));
    out.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"classes\": {}, \"requests_per_client\": {}, \"threads\": \"serial\"}},\n",
        cfg.nodes,
        cfg.classes,
        cfg.requests_per_client()
    ));
    out.push_str("  \"rows\": [\n");
    for (index, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"clients\": {}, \"requests\": {}, \"seconds\": {:.4}, \"throughput_rps\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            row.clients,
            row.requests,
            row.seconds,
            row.throughput_rps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            if index + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&sorted, 50.0), 50.0);
        assert_eq!(percentile_ms(&sorted, 95.0), 95.0);
        assert_eq!(percentile_ms(&sorted, 99.0), 99.0);
        assert_eq!(percentile_ms(&sorted, 100.0), 100.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
        let single = [Duration::from_millis(7)];
        assert_eq!(percentile_ms(&single, 50.0), 7.0);
        assert_eq!(percentile_ms(&single, 99.0), 7.0);
    }

    #[test]
    fn report_renders_parseable_json() {
        let cfg = ServeLoadConfig::smoke();
        let rows = vec![LoadRow {
            clients: 1,
            requests: 11,
            seconds: 0.5,
            throughput_rps: 22.0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
        }];
        let report = render_report(&cfg, &rows);
        let parsed = fg_serve::Json::parse(&report).expect("report must be valid JSON");
        assert_eq!(
            parsed.get("bench").and_then(fg_serve::Json::as_str),
            Some("serve_load")
        );
        assert_eq!(
            parsed
                .get("hardware")
                .and_then(|h| h.get("cores"))
                .and_then(fg_serve::Json::as_usize),
            Some(crate::kernels::detected_cores())
        );
        let gating = parsed.get("gating").and_then(fg_serve::Json::as_str);
        assert!(gating == Some("structure") || gating == Some("throughput"));
        let rendered_rows = parsed
            .get("rows")
            .and_then(fg_serve::Json::as_array)
            .unwrap();
        assert_eq!(rendered_rows.len(), 1);
        assert_eq!(
            rendered_rows[0]
                .get("clients")
                .and_then(fg_serve::Json::as_usize),
            Some(1)
        );
    }
}
