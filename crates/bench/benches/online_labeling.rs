//! Online labeling: amortized cost of incremental summary maintenance vs full
//! recomputation on the fig3b scalability graphs (d = 5, k = 3, h = 8, f = 0.01).
//!
//! A `DeltaSummary` engine is warmed once, then a stream of single-seed additions
//! is folded in. The amortization claim is proven by **counters, not wall-clock**:
//! per mutation the engine touches `Σℓ |supp(aℓ)|` node-rows (the mutated node's
//! ℓmax-hop ball) while a full recomputation touches `n · ℓmax` rows — the ratio is
//! asserted ≤ 5% on every measured graph, and the engine performs **zero** full
//! summarizations during the stream. Wall-clock times are recorded alongside for
//! the perf trajectory: `target/experiments/online_labeling.csv` holds one row per
//! (graph size, counting mode) with per-mutation delta time, full-recompute time,
//! row counts, and the amortized speedup.
//!
//! Env knobs: `FG_SCALE` scales the graph sizes (default 1.0); `FG_BENCH_SMOKE=1`
//! runs one small size with a short stream so CI can execute the harness in
//! seconds.

use fg_bench::{bench_iters, scale_factor, ExperimentTable};
use fg_core::incremental::{DeltaSummary, SeedMutation};
use fg_core::prelude::*;
use fg_core::{summarize_with, SummaryConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let scale = scale_factor();
    // The ℓmax-hop ball of a mutation is a property of the degree (≈ d + d² + … +
    // d⁵ ≈ 5k rows at d = 5), not of the graph size, so the ≤ 5% row-ratio bound
    // needs n·ℓmax ≥ 20× that: n ≥ 50k. Smaller graphs simply have less to
    // amortize — the delta path is still never *worse* than recomputing.
    let (sizes, stream_len, full_iters): (Vec<usize>, usize, usize) = if smoke {
        (vec![50_000], 20, 2)
    } else {
        (
            [50_000usize, 100_000, 200_000]
                .iter()
                .map(|&n| ((n as f64 * scale) as usize).max(50_000))
                .collect(),
            200,
            5,
        )
    };
    let lmax = 5;

    let mut table = ExperimentTable::new(
        "online_labeling",
        &[
            "n",
            "m",
            "mode",
            "mutations",
            "delta_rows_per_mutation",
            "full_rows",
            "row_ratio",
            "delta_s_per_mutation",
            "full_recompute_s",
            "amortized_speedup",
        ],
    );

    for &n in &sizes {
        // The fig3b generator setup: d = 5, k = 3, h = 8, f = 0.01.
        let config = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let graph = Arc::new(syn.graph);
        let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
        let m = graph.num_edges();

        for non_backtracking in [true, false] {
            let mode = if non_backtracking { "nb" } else { "all" };
            let mut engine = DeltaSummary::new(
                Arc::clone(&graph),
                seeds.clone(),
                lmax,
                non_backtracking,
                Threads::Serial,
            )
            .expect("engine builds");
            let warmup_summarizations = engine.stats().full_summarizations;

            // Stream single-seed additions at random unlabeled nodes.
            let mut stream_rng = StdRng::seed_from_u64(17);
            let mut unlabeled = engine.seeds().unlabeled_nodes();
            let mut delta_rows = 0usize;
            let start = Instant::now();
            let mut applied = 0usize;
            for _ in 0..stream_len {
                if unlabeled.is_empty() {
                    break;
                }
                let pick = stream_rng.gen_index(unlabeled.len());
                let node = unlabeled.swap_remove(pick);
                let outcome = engine
                    .apply(&[SeedMutation::Add {
                        node,
                        label: syn.labeling.class_of(node),
                    }])
                    .expect("mutation applies");
                assert_eq!(
                    outcome.full_recomputes, 0,
                    "streamed mutation fell back to a full recompute"
                );
                delta_rows += outcome.rows_touched;
                applied += 1;
            }
            let delta_time = start.elapsed();
            assert_eq!(
                engine.stats().full_summarizations,
                warmup_summarizations,
                "the stream must not trigger any full summarization"
            );

            // Reference: one full recomputation on the final seed set (also the
            // bit-identity gate — the maintained counts must match exactly).
            let summary_config = SummaryConfig {
                max_length: lmax,
                non_backtracking,
                variant: NormalizationVariant::RowStochastic,
                ..SummaryConfig::default()
            };
            let final_seeds = engine.seeds().clone();
            let cold = summarize_with(&graph, &final_seeds, &summary_config, Threads::Serial)
                .expect("cold summarize");
            for l in 1..=lmax {
                let bits = |mat: &fg_sparse::DenseMatrix| {
                    mat.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                };
                assert_eq!(
                    bits(&engine.counts()[l - 1]),
                    bits(cold.count(l).unwrap()),
                    "delta counts diverged from cold summarize at length {l}"
                );
            }
            let full = bench_iters(&format!("full_recompute/{mode}/n={n}"), full_iters, || {
                summarize_with(&graph, &final_seeds, &summary_config, Threads::Serial)
                    .expect("cold summarize")
            });

            let full_rows = engine.stats().full_rows_per_summarization;
            let rows_per_mutation = delta_rows as f64 / applied.max(1) as f64;
            let row_ratio = rows_per_mutation / full_rows as f64;
            let delta_s = delta_time.as_secs_f64() / applied.max(1) as f64;
            let full_s = full.mean.as_secs_f64();
            // The acceptance bound: per-mutation delta work ≤ 5% of a recompute.
            assert!(
                row_ratio <= 0.05,
                "delta rows per mutation ({rows_per_mutation:.0}) exceed 5% of a full \
                 recompute ({full_rows}) on n = {n} ({mode})"
            );
            table.push_row(vec![
                n.to_string(),
                m.to_string(),
                mode.to_string(),
                applied.to_string(),
                format!("{rows_per_mutation:.1}"),
                full_rows.to_string(),
                format!("{row_ratio:.5}"),
                format!("{delta_s:.6}"),
                format!("{full_s:.6}"),
                format!("{:.1}", full_s / delta_s.max(1e-12)),
            ]);
        }

        // Batched mutations: 16 seed additions folded into ONE `apply` call. The
        // engine unions the touched ℓmax-hop balls across the batch, so
        // overlapping balls are processed once (at d = 5 the balls are sparse and
        // rarely overlap — the row count stays comparable to the stream — but the
        // per-apply bookkeeping is paid once for all 16), and the batch must meet
        // the same ≤ 5% row bound and bit-identity gate the stream does.
        let mut engine = DeltaSummary::new(
            Arc::clone(&graph),
            seeds.clone(),
            lmax,
            true,
            Threads::Serial,
        )
        .expect("engine builds");
        let mut batch_rng = StdRng::seed_from_u64(17);
        let mut unlabeled = engine.seeds().unlabeled_nodes();
        let batch: Vec<SeedMutation> = (0..16)
            .map(|_| {
                let pick = batch_rng.gen_index(unlabeled.len());
                let node = unlabeled.swap_remove(pick);
                SeedMutation::Add {
                    node,
                    label: syn.labeling.class_of(node),
                }
            })
            .collect();
        let start = Instant::now();
        let outcome = engine.apply(&batch).expect("batch applies");
        let delta_time = start.elapsed();
        assert_eq!(
            outcome.full_recomputes, 0,
            "batched mutations fell back to a full recompute"
        );

        // Bit-identity gate: the batched maintenance must agree with a cold
        // summarization of the final seed set, exactly like the streamed path.
        let summary_config = SummaryConfig {
            max_length: lmax,
            non_backtracking: true,
            variant: NormalizationVariant::RowStochastic,
            ..SummaryConfig::default()
        };
        let final_seeds = engine.seeds().clone();
        let (cold, full_time) = fg_bench::time_it(|| {
            summarize_with(&graph, &final_seeds, &summary_config, Threads::Serial)
                .expect("cold summarize")
        });
        for l in 1..=lmax {
            let bits = |mat: &fg_sparse::DenseMatrix| {
                mat.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            };
            assert_eq!(
                bits(&engine.counts()[l - 1]),
                bits(cold.count(l).unwrap()),
                "batched counts diverged from cold summarize at length {l}"
            );
        }

        let full_rows = engine.stats().full_rows_per_summarization;
        let rows_per_mutation = outcome.rows_touched as f64 / batch.len() as f64;
        let row_ratio = rows_per_mutation / full_rows as f64;
        let delta_s = delta_time.as_secs_f64() / batch.len() as f64;
        let full_s = full_time.as_secs_f64();
        assert!(
            row_ratio <= 0.05,
            "batched delta rows per mutation ({rows_per_mutation:.0}) exceed 5% of a \
             full recompute ({full_rows}) on n = {n}"
        );
        table.push_row(vec![
            n.to_string(),
            m.to_string(),
            "nb-batch16".to_string(),
            batch.len().to_string(),
            format!("{rows_per_mutation:.1}"),
            full_rows.to_string(),
            format!("{row_ratio:.5}"),
            format!("{delta_s:.6}"),
            format!("{full_s:.6}"),
            format!("{:.1}", full_s / delta_s.max(1e-12)),
        ]);
    }
    table.print_and_save();
}
