//! `cargo bench --bench serve_load` — load-generate against the fg-serve TCP
//! tier and publish the serving perf trajectory.
//!
//! Concurrent clients drive disjoint named datasets with deterministic mixed
//! read/mutate streams; every run verifies each client's response stream is
//! byte-identical to a serial replay before reporting throughput and latency
//! percentiles (see [`fg_bench::serve_load`]).
//!
//! Output: one aligned line per client count on stdout, and the JSON report at
//! the repository root (`BENCH_serve.json`) for the committed trajectory.
//! Env knobs: `FG_BENCH_SMOKE=1` runs a seconds-scale configuration;
//! `FG_BENCH_OUT` overrides the report path.

use fg_bench::serve_load::{render_report, run_serve_load, ServeLoadConfig};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let cfg = if smoke {
        ServeLoadConfig::smoke()
    } else {
        ServeLoadConfig::full()
    };
    let rows = run_serve_load(&cfg).expect("serve_load run failed");
    for row in &rows {
        println!("{}", row.to_line());
    }
    let out: PathBuf = match std::env::var_os("FG_BENCH_OUT") {
        Some(path) => PathBuf::from(path),
        // CARGO_MANIFEST_DIR is crates/bench; the committed report lives at the
        // repository root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json"),
    };
    std::fs::write(&out, render_report(&cfg, &rows)).expect("cannot write the report");
    println!("serve_load report written to {}", out.display());
}
