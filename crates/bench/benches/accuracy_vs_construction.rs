//! Accuracy vs graph construction: how the choice of builder (kNN parameters,
//! edge weighting, sparse-regularized reconstruction) changes end-to-end
//! classification accuracy when the graph itself is *built* from a raw feature
//! matrix rather than given.
//!
//! The workload is a noisy Gaussian-blob mixture (spread chosen so the classes
//! overlap and no builder reaches perfect accuracy). Every builder constructs a
//! graph from the same features, and every constructed graph is classified with
//! DCEr + LinBP against the same stratified seed draws, so the accuracy column
//! isolates the construction choice. One row per builder lands in
//! `target/experiments/accuracy_vs_construction.csv`.
//!
//! The run asserts the sweep's ranking claim: at least one tuned configuration
//! (different `k`, edge weighting, or symmetrization policy) scores strictly
//! above the plain binary union-kNN baseline.
//!
//! Env knobs: `FG_SCALE` scales the node count (default 1.0); `FG_BENCH_SMOKE=1`
//! runs a small instance with fewer repetitions so CI finishes in seconds.

use fg_bench::{accuracy_vs_construction, construction_to_table, scale_factor, EstimatorKind};
use fg_datasets::BlobConfig;

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let (nodes, repetitions) = if smoke {
        (240, 3)
    } else {
        (((900.0 * scale_factor()) as usize).max(240), 5)
    };
    // Heteroscedastic blobs: `spread_skew = 3` makes the last class three times
    // noisier than the first, so the diffuse cluster's nearest-neighbor lists
    // reach into the tight clusters — exactly the asymmetry that mutual-kNN
    // pruning and distance-aware weightings exist to handle, and that plain
    // binary union-kNN cannot.
    let config = BlobConfig {
        nodes,
        classes: 3,
        dims: 4,
        spread: 1.0,
        spread_skew: 3.0,
        seed: 7,
    };
    let (features, labeling) =
        fg_datasets::synthesize_blobs(&config).expect("blob synthesis succeeds");

    // First spec is the baseline the ranking assertion compares against.
    let specs = [
        "Knn(k=10)", // binary weighting, euclidean, union — the baseline
        "Knn(k=5)",
        "Knn(k=10,weighting=heat)",
        "Knn(k=10,weighting=inverse)",
        "Knn(k=10,sym=mutual)",
        "Knn(k=15,sym=mutual)",
        "SparseReg(k=10,alpha=0.05)",
    ];
    let outcomes = accuracy_vs_construction(
        &features,
        &labeling,
        &specs,
        EstimatorKind::Dcer,
        0.08,
        repetitions,
        13,
    )
    .expect("construction sweep succeeds");

    let table = construction_to_table("accuracy_vs_construction", &outcomes);
    table.print_and_save();

    // Mean accuracy per builder, in spec order (the table preserves it).
    let mean = |row: &[String]| -> f64 { row[3].parse().expect("accuracy cell is numeric") };
    let baseline = mean(&table.rows[0]);
    let best_other = table.rows[1..]
        .iter()
        .map(|row| mean(row))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_other > baseline,
        "no construction config beat the binary-kNN baseline \
         (baseline {baseline:.3}, best other {best_other:.3})"
    );
    println!(
        "[ranking holds: best non-baseline config {best_other:.3} > binary-kNN baseline {baseline:.3}]"
    );
}
