//! `cargo bench --bench bench_kernels` — measure the hot kernels (blocked SpMM
//! vs the scalar reference, nnz-aware layout on a hub-heavy graph, the full
//! summarize chain) and publish the kernel perf trajectory.
//!
//! Every measurement passes a bit-identity oracle before it is timed (blocked
//! vs scalar output, parallel vs serial output), so a green bench run is a
//! correctness gate as well as a timing source (see [`fg_bench::kernels`]).
//!
//! Output: aligned report lines on stdout and the JSON report at the repository
//! root (`BENCH_kernels.json`) for the committed trajectory. The report embeds
//! the detected core count and a derived `gating` mode — on sub-4-core hosts it
//! says `"structure"` so CI gates shape + bit-identity rather than fictional
//! speedups. Env knobs: `FG_BENCH_SMOKE=1` runs a seconds-scale configuration;
//! `FG_BENCH_OUT` overrides the report path.

use fg_bench::kernels::{render_kernel_report, run_kernel_bench, KernelBenchConfig};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let cfg = if smoke {
        KernelBenchConfig::smoke()
    } else {
        KernelBenchConfig::full()
    };
    let report = run_kernel_bench(&cfg).expect("kernel bench failed");
    for c in &report.comparisons {
        println!(
            "spmm_blocked_vs_scalar k={:<3} scalar {:>10.6}s  blocked {:>10.6}s  {:>5.2}x",
            c.k, c.scalar_s, c.blocked_s, c.speedup
        );
    }
    for row in &report.rows {
        println!("{}", row.to_line());
    }
    let out: PathBuf = match std::env::var_os("FG_BENCH_OUT") {
        Some(path) => PathBuf::from(path),
        // CARGO_MANIFEST_DIR is crates/bench; the committed report lives at the
        // repository root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json"),
    };
    std::fs::write(&out, render_kernel_report(&cfg, &report)).expect("cannot write the report");
    println!("kernel report written to {}", out.display());
}
