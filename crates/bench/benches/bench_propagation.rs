//! Criterion bench: label-propagation methods (LinBP, loopy BP, harmonic functions,
//! random walks) on the same graph — the denominator of the paper's "estimation is
//! cheaper than propagation" claim.

use criterion::{criterion_group, criterion_main, Criterion};
use fg_core::prelude::*;
use fg_propagation::BpConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, SeedLabels, fg_sparse::DenseMatrix) {
    let cfg = GeneratorConfig::balanced(5_000, 15.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(3);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let h = syn.planted_h.as_dense().clone();
    (syn.graph, seeds, h)
}

fn bench_propagation(c: &mut Criterion) {
    let (graph, seeds, h) = setup();
    let mut group = c.benchmark_group("propagation");
    group.sample_size(10);

    group.bench_function("LinBP_10_iterations", |b| {
        let cfg = LinBpConfig {
            max_iterations: 10,
            tolerance: None,
            ..LinBpConfig::default()
        };
        b.iter(|| propagate(&graph, &seeds, &h, &cfg).expect("LinBP"))
    });
    group.bench_function("LoopyBP_10_iterations", |b| {
        let cfg = BpConfig {
            max_iterations: 10,
            tolerance: 0.0,
            ..BpConfig::default()
        };
        b.iter(|| fg_propagation::propagate_bp(&graph, &seeds, &h, &cfg).expect("BP"))
    });
    group.bench_function("HarmonicFunctions", |b| {
        let cfg = HarmonicConfig {
            max_iterations: 10,
            ..HarmonicConfig::default()
        };
        b.iter(|| harmonic_functions(&graph, &seeds, &cfg).expect("harmonic"))
    });
    group.bench_function("MultiRankWalk", |b| {
        let cfg = RandomWalkConfig {
            max_iterations: 10,
            ..RandomWalkConfig::default()
        };
        b.iter(|| multi_rank_walk(&graph, &seeds, &cfg).expect("walk"))
    });
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
