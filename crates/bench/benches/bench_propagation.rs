//! Bench: label-propagation backends (LinBP, loopy BP, harmonic functions, random
//! walks) on the same generated graph, all driven through the `Propagator` trait —
//! the denominator of the paper's "estimation is cheaper than propagation" claim.
//!
//! LinBP is additionally measured through a direct (statically dispatched) call, so
//! the overhead of the trait's dynamic dispatch stays visible in the perf trajectory
//! (it should be noise: one virtual call per propagation run).

use fg_bench::run_bench;
use fg_core::prelude::*;
use fg_propagation::{registry, BpConfig, PropagatorOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, SeedLabels, fg_sparse::DenseMatrix) {
    let cfg = GeneratorConfig::balanced(5_000, 15.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(3);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let h = syn.planted_h.as_dense().clone();
    (syn.graph, seeds, h)
}

fn main() {
    let (graph, seeds, h) = setup();
    println!(
        "== propagation (n = {}, m = {}, 10 iterations) ==",
        graph.num_nodes(),
        graph.num_edges()
    );

    // All four backends through the trait, built via the by-name registry exactly as
    // the CLI and the sweeps build them.
    let opts = PropagatorOptions {
        max_iterations: Some(10),
        tolerance: Some(0.0),
        ..PropagatorOptions::default()
    };
    for name in registry::propagator_names() {
        let backend = registry::by_name_with(name, &opts).expect("registered backend");
        let label = format!("{}_10_iterations_dyn", backend.name());
        run_bench(&label, || {
            backend.propagate(&graph, &seeds, &h).expect("propagation")
        });
    }

    // Static-dispatch baselines for the two compatibility-aware backends, to expose
    // any overhead the `dyn Propagator` indirection adds.
    let lin_cfg = LinBpConfig {
        max_iterations: 10,
        tolerance: Some(0.0),
        ..LinBpConfig::default()
    };
    run_bench("LinBP_10_iterations_direct", || {
        propagate(&graph, &seeds, &h, &lin_cfg).expect("LinBP")
    });
    let bp_cfg = BpConfig {
        max_iterations: 10,
        tolerance: 0.0,
        ..BpConfig::default()
    };
    run_bench("LoopyBP_10_iterations_direct", || {
        fg_propagation::propagate_bp(&graph, &seeds, &h, &bp_cfg).expect("BP")
    });
}
