//! Criterion bench: factorized path summation vs explicit adjacency powers (Fig. 5b).
//!
//! Measures (1) the factorized `P̂(ℓ)_NB` computation for increasing ℓmax — expected to
//! grow linearly in ℓ — and (2) the explicit `Wℓ` computation for small ℓ — expected to
//! grow geometrically with the average degree per extra hop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fg_core::{explicit_adjacency_power, summarize, SummaryConfig};
use fg_graph::{generate, GeneratorConfig, SeedLabels};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(n: usize, d: f64) -> (fg_graph::Graph, SeedLabels) {
    let cfg = GeneratorConfig::balanced(n, d, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(1);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    (syn.graph, seeds)
}

fn bench_factorized_summary(c: &mut Criterion) {
    let (graph, seeds) = setup(5_000, 20.0);
    let mut group = c.benchmark_group("factorized_summary");
    group.sample_size(10);
    for lmax in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(lmax), &lmax, |b, &lmax| {
            b.iter(|| {
                summarize(&graph, &seeds, &SummaryConfig::with_max_length(lmax))
                    .expect("summary")
            })
        });
    }
    group.finish();
}

fn bench_explicit_powers(c: &mut Criterion) {
    let (graph, _) = setup(5_000, 20.0);
    let mut group = c.benchmark_group("explicit_adjacency_power");
    group.sample_size(10);
    for ell in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(ell), &ell, |b, &ell| {
            b.iter(|| explicit_adjacency_power(&graph, ell).expect("power"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_factorized_summary, bench_explicit_powers);
criterion_main!(benches);
