//! Bench: factorized path summation vs explicit adjacency powers (Fig. 5b).
//!
//! Measures (1) the factorized `P̂(ℓ)_NB` computation for increasing ℓmax — expected to
//! grow linearly in ℓ — and (2) the explicit `Wℓ` computation for small ℓ — expected to
//! grow geometrically with the average degree per extra hop.

use fg_bench::run_bench;
use fg_core::{explicit_adjacency_power, summarize, SummaryConfig};
use fg_graph::{generate, GeneratorConfig, SeedLabels};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(n: usize, d: f64) -> (fg_graph::Graph, SeedLabels) {
    let cfg = GeneratorConfig::balanced(n, d, 3, 3.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(1);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.1, &mut rng);
    (syn.graph, seeds)
}

fn main() {
    let (graph, seeds) = setup(5_000, 20.0);
    println!(
        "== factorized summary vs explicit powers (n = {}, d = 20) ==",
        graph.num_nodes()
    );

    for lmax in [1usize, 2, 4, 8] {
        run_bench(&format!("factorized_summary/lmax={lmax}"), || {
            summarize(&graph, &seeds, &SummaryConfig::with_max_length(lmax)).expect("summary")
        });
    }
    for ell in [1usize, 2, 3] {
        run_bench(&format!("explicit_adjacency_power/l={ell}"), || {
            explicit_adjacency_power(&graph, ell).expect("power")
        });
    }
}
