//! `cargo bench --bench bench_lowrank` — measure the low-rank spectral
//! counting backend against the exact kernel and publish the committed
//! `BENCH_lowrank.json` trajectory.
//!
//! Before any timing, a full-rank oracle asserts the factor-space recurrence
//! reproduces the exact counts and statistics in both counting modes, so a
//! green bench run is a correctness gate as well as a timing source (see
//! [`fg_bench::lowrank`]). The report also embeds the `accuracy_vs_rank`
//! sweep, the detected core count, and the derived `gating` mode — CI only
//! enforces the rank-64 speedup floor on `"throughput"` hosts.
//!
//! Env knobs: `FG_BENCH_SMOKE=1` runs a seconds-scale configuration;
//! `FG_BENCH_OUT` overrides the report path.

use fg_bench::lowrank::{render_lowrank_report, run_lowrank_bench, LowRankBenchConfig};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let cfg = if smoke {
        LowRankBenchConfig::smoke()
    } else {
        LowRankBenchConfig::full()
    };
    let report = run_lowrank_bench(&cfg).expect("lowrank bench failed");
    println!(
        "summarize_exact lmax={} nnz={}: {:.6}s",
        cfg.max_length, report.nnz, report.exact_s
    );
    for row in &report.rows {
        println!("{}", row.to_line());
    }
    for o in &report.accuracy {
        println!(
            "accuracy {:<8} {:.4} (h_l2_vs_exact {:.6})",
            match o.rank {
                None => "exact".to_string(),
                Some(r) => format!("rank={r}"),
            },
            o.accuracy,
            o.h_l2_vs_exact
        );
    }
    let out: PathBuf = match std::env::var_os("FG_BENCH_OUT") {
        Some(path) => PathBuf::from(path),
        // CARGO_MANIFEST_DIR is crates/bench; the committed report lives at the
        // repository root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_lowrank.json"),
    };
    std::fs::write(&out, render_lowrank_report(&cfg, &report)).expect("cannot write the report");
    println!("lowrank report written to {}", out.display());
}
