//! Bench: compatibility estimators on a fixed sparsely labeled graph
//! (the per-method costs behind Fig. 6f and Fig. 6k).

use fg_bench::run_bench;
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, Labeling, SeedLabels) {
    let cfg = GeneratorConfig::balanced(5_000, 15.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    (syn.graph, syn.labeling, seeds)
}

fn main() {
    let (graph, labeling, seeds) = setup();
    println!(
        "== estimators (n = {}, m = {}, f = 0.01) ==",
        graph.num_nodes(),
        graph.num_edges()
    );

    let estimators: Vec<(&str, Box<dyn CompatibilityEstimator>)> = vec![
        ("MCE", Box::new(MyopicCompatibilityEstimation::default())),
        ("LCE", Box::new(LinearCompatibilityEstimation::default())),
        ("DCE", Box::new(DistantCompatibilityEstimation::default())),
        ("DCEr_r10", Box::new(DceWithRestarts::default())),
        (
            "GS_measurement",
            Box::new(GoldStandard::new(labeling.clone())),
        ),
    ];
    for (label, est) in &estimators {
        run_bench(label, || est.estimate(&graph, &seeds).expect("estimate"));
    }
}
