//! Criterion bench: compatibility estimators on a fixed sparsely labeled graph
//! (the per-method costs behind Fig. 6f and Fig. 6k).

use criterion::{criterion_group, criterion_main, Criterion};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, Labeling, SeedLabels) {
    let cfg = GeneratorConfig::balanced(5_000, 15.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    (syn.graph, syn.labeling, seeds)
}

fn bench_estimators(c: &mut Criterion) {
    let (graph, labeling, seeds) = setup();
    let mut group = c.benchmark_group("estimators");
    group.sample_size(10);

    group.bench_function("MCE", |b| {
        let est = MyopicCompatibilityEstimation::default();
        b.iter(|| est.estimate(&graph, &seeds).expect("MCE"))
    });
    group.bench_function("LCE", |b| {
        let est = LinearCompatibilityEstimation::default();
        b.iter(|| est.estimate(&graph, &seeds).expect("LCE"))
    });
    group.bench_function("DCE", |b| {
        let est = DistantCompatibilityEstimation::default();
        b.iter(|| est.estimate(&graph, &seeds).expect("DCE"))
    });
    group.bench_function("DCEr_r10", |b| {
        let est = DceWithRestarts::default();
        b.iter(|| est.estimate(&graph, &seeds).expect("DCEr"))
    });
    group.bench_function("GS_measurement", |b| {
        let est = GoldStandard::new(labeling.clone());
        b.iter(|| est.estimate(&graph, &seeds).expect("GS"))
    });
    group.finish();
}

criterion_group!(benches, bench_estimators);
criterion_main!(benches);
