//! Bench: compatibility estimators on a fixed sparsely labeled graph
//! (the per-method costs behind Fig. 6f and Fig. 6k).
//!
//! Each estimator is measured twice: standalone (summarizing the graph itself, the
//! pre-context behavior) and against a shared, pre-warmed `EstimationContext` — the
//! difference is the summarization cost the cache removes from every cell after the
//! first. A final section records the serial-vs-parallel cost of the summarization
//! itself (`summarize_with` at 1/2/4 threads; bit-identical output).

use fg_bench::{run_bench, warm_context_for};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, Labeling, SeedLabels) {
    let cfg = GeneratorConfig::balanced(5_000, 15.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(2);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    (syn.graph, syn.labeling, seeds)
}

fn main() {
    let (graph, labeling, seeds) = setup();
    println!(
        "== estimators (n = {}, m = {}, f = 0.01) ==",
        graph.num_nodes(),
        graph.num_edges()
    );

    let estimators: Vec<(&str, Box<dyn CompatibilityEstimator>)> = vec![
        ("MCE", Box::new(MyopicCompatibilityEstimation::default())),
        ("LCE", Box::new(LinearCompatibilityEstimation::default())),
        ("DCE", Box::new(DistantCompatibilityEstimation::default())),
        ("DCEr_r10", Box::new(DceWithRestarts::default())),
        (
            "GS_measurement",
            Box::new(GoldStandard::new(labeling.clone())),
        ),
    ];
    for (label, est) in &estimators {
        run_bench(&format!("{label}/standalone"), || {
            est.estimate(&graph, &seeds).expect("estimate")
        });
    }

    // The same estimators against one shared, pre-warmed summary cache: what a sweep
    // cell pays per estimator once the graph has been summarized. The context is
    // warmed from the measured estimators themselves, so the cached prefix always
    // covers exactly what runs below.
    println!("\n== estimators sharing one EstimationContext ==");
    let ctx = EstimationContext::new(&graph, &seeds);
    warm_context_for(&ctx, estimators.iter().map(|(_, e)| e.as_ref())).expect("warm");
    for (label, est) in &estimators {
        run_bench(&format!("{label}/shared_summary"), || {
            est.estimate_with_context(&ctx).expect("estimate")
        });
    }
    println!(
        "(shared context summarized the graph {} time(s) across all cells)",
        ctx.summary_computations()
    );

    // Serial vs parallel summarization: the O(m·k·lmax) step the context caches.
    println!("\n== summarize serial vs parallel (lmax = 5, bit-identical) ==");
    let config = SummaryConfig::with_max_length(5);
    for threads in [Threads::Serial, Threads::Fixed(2), Threads::Fixed(4)] {
        run_bench(&format!("summarize/threads={threads}"), || {
            summarize_with(&graph, &seeds, &config, threads).expect("summary")
        });
    }
}
