//! Criterion bench: DCEr estimation and LinBP propagation as the graph grows
//! (the Fig. 3b / Fig. 6k scaling curves, measured with Criterion's statistics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make(n: usize) -> (Graph, SeedLabels, fg_sparse::DenseMatrix) {
    let cfg = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(4);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let h = syn.planted_h.as_dense().clone();
    (syn.graph, seeds, h)
}

fn bench_scaling(c: &mut Criterion) {
    let sizes = [2_000usize, 8_000, 32_000];
    let mut group = c.benchmark_group("scaling_with_edges");
    group.sample_size(10);
    for &n in &sizes {
        let (graph, seeds, h) = make(n);
        let m = graph.num_edges() as u64;
        group.throughput(Throughput::Elements(m));
        group.bench_with_input(BenchmarkId::new("DCEr", m), &n, |b, _| {
            let est = DceWithRestarts::default();
            b.iter(|| est.estimate(&graph, &seeds).expect("DCEr"))
        });
        group.bench_with_input(BenchmarkId::new("LinBP_propagation", m), &n, |b, _| {
            let cfg = LinBpConfig {
                max_iterations: 10,
                tolerance: None,
                ..LinBpConfig::default()
            };
            b.iter(|| propagate(&graph, &seeds, &h, &cfg).expect("propagation"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
