//! Bench: DCEr estimation and LinBP propagation as the graph grows
//! (the Fig. 3b / Fig. 6k scaling curves).

use fg_bench::run_bench;
use fg_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn make(n: usize) -> (Graph, SeedLabels, fg_sparse::DenseMatrix) {
    let cfg = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(4);
    let syn = generate(&cfg, &mut rng).expect("generation");
    let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
    let h = syn.planted_h.as_dense().clone();
    (syn.graph, seeds, h)
}

fn main() {
    let sizes = [2_000usize, 8_000, 32_000];
    for &n in &sizes {
        let (graph, seeds, h) = make(n);
        let m = graph.num_edges();
        println!("== scaling (n = {n}, m = {m}) ==");
        let est = DceWithRestarts::default();
        run_bench(&format!("DCEr/m={m}"), || {
            est.estimate(&graph, &seeds).expect("DCEr")
        });
        let cfg = LinBpConfig {
            max_iterations: 10,
            tolerance: None,
            ..LinBpConfig::default()
        };
        run_bench(&format!("LinBP_propagation/m={m}"), || {
            propagate(&graph, &seeds, &h, &cfg).expect("propagation")
        });
    }
}
