//! Serial-vs-N-thread speedup of the parallel sparse kernels on the fig3b
//! scalability graphs (d = 5, h = 8 — the setup behind the paper's headline
//! 16.4M-edge timing), plus the parallel sweep runner. The speedups recorded here are
//! part of the tracked perf trajectory: `target/experiments/bench_parallel.csv` holds
//! one row per (kernel, graph size) with serial / 2-thread / 4-thread times and the
//! 4-thread speedup.
//!
//! The parallel kernels are bit-identical to the serial ones, so any row whose
//! outputs diverge is a bug, not noise; this harness asserts that on every measured
//! graph before timing. Absolute speedups depend on the machine — on a single-core
//! container the ratios hover around 1.0x; the >=1.5x 4-thread target applies to
//! hardware with at least 4 cores.
//!
//! Env knobs: `FG_SCALE` scales the graph sizes (default 1.0); `FG_BENCH_SMOKE=1`
//! runs a single small size with few iterations so CI can execute the harness in
//! seconds.

use fg_bench::ExperimentTable;
use fg_bench::{accuracy_vs_backend, accuracy_vs_backend_parallel, bench_iters, scale_factor};
use fg_core::prelude::*;
use fg_sparse::Threads;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn mean_secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let scale = scale_factor();
    let (sizes, iters): (Vec<usize>, usize) = if smoke {
        (vec![2_000], 3)
    } else {
        (
            [2_000usize, 10_000, 50_000, 200_000]
                .iter()
                .map(|&n| ((n as f64 * scale) as usize).max(500))
                .collect(),
            10,
        )
    };
    let thread_variants = [Threads::Fixed(2), Threads::Fixed(4)];

    println!(
        "bench_parallel: {} hardware thread(s) available, sizes {:?}",
        Threads::Auto.count(),
        sizes
    );

    let mut table = ExperimentTable::new(
        "bench_parallel",
        &["kernel", "n", "m", "serial_s", "t2_s", "t4_s", "speedup_t4"],
    );

    for &n in &sizes {
        // The fig3b generator setup: d = 5, k = 3, h = 8, f = 0.01.
        let config = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
        let mut rng = StdRng::seed_from_u64(3);
        let syn = generate(&config, &mut rng).expect("generation succeeds");
        let seeds = syn.labeling.stratified_sample(0.01, &mut rng);
        let w = syn.graph.adjacency();
        let x = seeds.to_matrix();
        let v: Vec<f64> = w.row_sums();
        let m = syn.graph.num_edges();

        // Correctness gate: parallel output must be bit-identical before timing it.
        let serial_ref = w.spmm_dense(&x).expect("spmm_dense");
        for &t in &thread_variants {
            let par = w.spmm_dense_with(&x, t).expect("spmm_dense_with");
            assert_eq!(serial_ref.data(), par.data(), "spmm_dense diverged at {t}");
        }

        // spmm_dense — the propagation workhorse (O(m·k) per call).
        let serial = bench_iters(&format!("spmm_dense/serial/n={n}"), iters, || {
            w.spmm_dense(&x).expect("spmm_dense")
        });
        let timed: Vec<_> = thread_variants
            .iter()
            .map(|&t| {
                bench_iters(&format!("spmm_dense/t{}/n={n}", t.count()), iters, || {
                    w.spmm_dense_with(&x, t).expect("spmm_dense_with")
                })
            })
            .collect();
        push_speedup_row(&mut table, "spmm_dense", n, m, &serial, &timed);

        // spmv — degree-style reductions.
        let serial = bench_iters(&format!("spmv/serial/n={n}"), iters, || {
            w.spmv(&v).expect("spmv")
        });
        let timed: Vec<_> = thread_variants
            .iter()
            .map(|&t| {
                bench_iters(&format!("spmv/t{}/n={n}", t.count()), iters, || {
                    w.spmv_with(&v, t).expect("spmv_with")
                })
            })
            .collect();
        push_speedup_row(&mut table, "spmv", n, m, &serial, &timed);

        // Gustavson spmm (W * W) — the unfactorized baseline's kernel. Quadratic-ish
        // output size, so keep it to the smaller graphs.
        if n <= 60_000 {
            let spmm_iters = iters.min(5);
            let serial = bench_iters(&format!("spmm/serial/n={n}"), spmm_iters, || {
                w.spmm(w).expect("spmm")
            });
            let timed: Vec<_> = thread_variants
                .iter()
                .map(|&t| {
                    bench_iters(&format!("spmm/t{}/n={n}", t.count()), spmm_iters, || {
                        w.spmm_with(w, t).expect("spmm_with")
                    })
                })
                .collect();
            push_speedup_row(&mut table, "spmm", n, m, &serial, &timed);
        }
    }

    // End-to-end: the parallel sweep runner distributing (backend × sparsity) cells.
    let sweep_n = if smoke {
        500
    } else {
        ((2_000.0 * scale) as usize).max(500)
    };
    bench_sweep(&mut table, sweep_n, if smoke { 1 } else { 2 });

    table.print_and_save();
    let four_thread: Vec<&Vec<String>> =
        table.rows.iter().filter(|r| r[0] == "spmm_dense").collect();
    if let Some(largest) = four_thread.last() {
        println!(
            "\nlargest fig3b graph (n = {}): 4-thread spmm_dense speedup {}x",
            largest[1], largest[6]
        );
    }
    println!("(target: >=1.5x at 4 threads on >=4-core hardware; ratios near 1.0x on this");
    println!(" machine indicate fewer cores, not a kernel regression — outputs are asserted");
    println!(" bit-identical above.)");
}

fn push_speedup_row(
    table: &mut ExperimentTable,
    kernel: &str,
    n: usize,
    m: usize,
    serial: &fg_bench::BenchMeasurement,
    timed: &[fg_bench::BenchMeasurement],
) {
    println!("{}", serial.to_line());
    for t in timed {
        println!("{}", t.to_line());
    }
    let serial_s = mean_secs(serial.mean);
    let t2_s = mean_secs(timed[0].mean);
    let t4_s = mean_secs(timed[1].mean);
    let speedup = if t4_s > 0.0 { serial_s / t4_s } else { 0.0 };
    table.push_row(vec![
        kernel.to_string(),
        n.to_string(),
        m.to_string(),
        format!("{serial_s:.6}"),
        format!("{t2_s:.6}"),
        format!("{t4_s:.6}"),
        format!("{speedup:.2}"),
    ]);
}

fn bench_sweep(table: &mut ExperimentTable, n: usize, reps: usize) {
    let config = GeneratorConfig::balanced(n, 5.0, 3, 8.0).expect("valid config");
    let mut rng = StdRng::seed_from_u64(3);
    let syn = generate(&config, &mut rng).expect("generation succeeds");
    let fractions = [0.01, 0.05, 0.1];
    let backends = ["linbp", "harmonic", "rw"];
    let serial = bench_iters("sweep/serial", 3, || {
        accuracy_vs_backend(&syn.graph, &syn.labeling, &fractions, &backends, reps, 7)
            .expect("serial sweep")
    });
    let mut timed = Vec::new();
    for workers in [2usize, 4] {
        timed.push(bench_iters(&format!("sweep/t{workers}"), 3, || {
            accuracy_vs_backend_parallel(
                &syn.graph,
                &syn.labeling,
                &fractions,
                &backends,
                reps,
                7,
                Threads::Fixed(workers),
            )
            .expect("parallel sweep")
        }));
    }
    push_speedup_row(
        table,
        "sweep_cells",
        n,
        syn.graph.num_edges(),
        &serial,
        &timed,
    );
}
