//! `cargo bench --bench bench_obs` — measure the cost of the observability
//! layer and publish the overhead trajectory.
//!
//! Three sections: primitive costs (span enter/drop with tracing off and on,
//! counter increment, histogram observation), end-to-end classify medians with
//! tracing off vs on (predictions asserted byte-identical before timing), and
//! the derived disabled-path overhead, which must stay under 2% on every host
//! (see [`fg_bench::obs`]).
//!
//! Output: aligned report lines on stdout and the JSON report at the repository
//! root (`BENCH_obs.json`) for the committed trajectory. The report embeds the
//! detected core count and a derived `gating` mode — on sub-4-core hosts the
//! measured traced-vs-untraced delta is informational only. Env knobs:
//! `FG_BENCH_SMOKE=1` runs a seconds-scale configuration; `FG_BENCH_OUT`
//! overrides the report path.

use fg_bench::obs::{render_obs_report, run_obs_bench, ObsBenchConfig};
use std::path::PathBuf;

fn main() {
    let smoke = std::env::var("FG_BENCH_SMOKE").as_deref() == Ok("1");
    let cfg = if smoke {
        ObsBenchConfig::smoke()
    } else {
        ObsBenchConfig::full()
    };
    let report = run_obs_bench(&cfg).expect("obs bench failed");
    println!(
        "span_disabled      {:>10.2} ns/call\nspan_enabled       {:>10.2} ns/call\ncounter_inc        {:>10.2} ns/call\nhistogram_observe  {:>10.2} ns/call",
        report.span_disabled_ns,
        report.span_enabled_ns,
        report.counter_inc_ns,
        report.histogram_observe_ns
    );
    println!(
        "classify disabled {:>10.6}s  traced {:>10.6}s  ({} spans/run)",
        report.classify_disabled_s, report.classify_traced_s, report.spans_per_run
    );
    println!(
        "disabled-path overhead {:.4}%  measured delta {:+.2}%",
        report.disabled_overhead_pct, report.measured_delta_pct
    );
    let out: PathBuf = match std::env::var_os("FG_BENCH_OUT") {
        Some(path) => PathBuf::from(path),
        // CARGO_MANIFEST_DIR is crates/bench; the committed report lives at the
        // repository root.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json"),
    };
    std::fs::write(&out, render_obs_report(&cfg, &report)).expect("cannot write the report");
    println!("obs report written to {}", out.display());
}
