//! # fg-propagation
//!
//! Label-propagation backends for the `factorized-graphs` workspace, unified behind
//! the [`Propagator`] trait:
//!
//! * [`linbp`] — Linearized Belief Propagation, the propagation method the paper's
//!   compatibility estimation is designed for (Eq. 1/4, Theorem 3.1), including the
//!   spectral-radius-based convergence scaling of Eq. 2.
//! * [`bp`] — full loopy Belief Propagation, the reference method LinBP approximates.
//! * [`random_walk`] — MultiRankWalk-style random walks with restarts (homophily
//!   baseline, Section 2.4).
//! * [`harmonic`] — harmonic-functions label propagation (the "Homophily" baseline of
//!   Fig. 6i).
//! * [`metrics`] — accuracy and macro-averaged accuracy as used in the evaluation.
//!
//! Each algorithm keeps its specialized free function and config/result types, and
//! additionally implements [`Propagator`] ([`LinBp`], [`LoopyBp`], [`Harmonic`],
//! [`RandomWalk`]) returning the unified [`PropagationOutcome`]. Backends can be
//! looked up by name through [`registry`] (`"linbp"`, `"bp"`, `"harmonic"`, `"rw"`),
//! which is what the CLI's `--method` flag and the benchmark harness use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bp;
pub mod harmonic;
pub mod linbp;
pub mod metrics;
pub mod propagator;
pub mod random_walk;
pub mod registry;

pub use bp::{propagate_bp, BpConfig, BpResult};
pub use harmonic::{harmonic_functions, HarmonicConfig, HarmonicResult};
pub use linbp::{
    convergence_epsilon, label, label_or_abstain, propagate, LinBpConfig, PropagationResult,
    DEFAULT_CONVERGENCE_FRACTION, DEFAULT_ITERATIONS,
};
pub use metrics::{
    abstaining_macro_accuracy, abstaining_unlabeled_accuracy, abstention_rate, accuracy,
    confusion_matrix, holdout_accuracy, macro_accuracy, random_baseline, unlabeled_accuracy,
    unlabeled_micro_accuracy,
};
pub use propagator::{Harmonic, LinBp, LoopyBp, PropagationOutcome, Propagator, RandomWalk};
pub use random_walk::{multi_rank_walk, RandomWalkConfig, RandomWalkResult};
pub use registry::{
    all_propagators, by_name, by_name_with, canonical_name, propagator_names, PropagatorOptions,
    PropagatorSpec,
};
