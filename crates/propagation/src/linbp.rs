//! Linearized Belief Propagation (LinBP).
//!
//! LinBP (Gatterbauer et al., PVLDB 2015; Section 2.3 of the paper) replaces the
//! multiplicative update equations of loopy belief propagation with the linear system
//!
//! ```text
//! F ← X + W F Hε          (uncentered form, Eq. 4)
//! ```
//!
//! where `Hε = ε·H` and the scaling factor `ε` is chosen from the spectral radii of `W`
//! and the *centered* compatibility matrix `H̃` so that the iteration converges
//! (`ρ(εH̃) < 1/ρ(W)`, Eq. 2). Theorem 3.1 shows the final labels are identical whether
//! the centered residuals (`X̃`, `H̃`) or the raw matrices (`X`, `H`) are propagated, so
//! both modes are provided; the echo-cancellation term is omitted exactly as the paper
//! recommends.

use crate::metrics;
use fg_graph::{Graph, GraphError, Labeling, Result, SeedLabels};
use fg_sparse::{spectral_radius_dense, DenseMatrix, Threads};

/// How aggressively to scale the compatibility matrix relative to the convergence
/// boundary (the paper's `s`; `s = 0.5` is the setting used in Section 5.3).
pub const DEFAULT_CONVERGENCE_FRACTION: f64 = 0.5;

/// Default number of propagation iterations (the paper labels with 10 iterations).
pub const DEFAULT_ITERATIONS: usize = 10;

/// Configuration for LinBP propagation.
#[derive(Debug, Clone)]
pub struct LinBpConfig {
    /// Maximum number of iterations.
    pub max_iterations: usize,
    /// Fraction `s` of the convergence boundary used for the scaling factor `ε`.
    pub convergence_fraction: f64,
    /// Propagate centered residuals (`X̃`, `H̃`) instead of the raw matrices. The final
    /// labels are identical (Theorem 3.1); the centered form also converges numerically.
    pub centered: bool,
    /// Optional early-stopping tolerance on the maximum absolute belief change.
    pub tolerance: Option<f64>,
    /// Optional explicit scaling factor `ε`; when set, the spectral-radius computation
    /// is skipped entirely.
    pub explicit_epsilon: Option<f64>,
    /// Thread policy for the sparse kernels. The parallel kernels are bit-identical
    /// to the serial ones, so this only changes wall-clock time, never the result.
    pub threads: Threads,
}

impl Default for LinBpConfig {
    fn default() -> Self {
        LinBpConfig {
            max_iterations: DEFAULT_ITERATIONS,
            convergence_fraction: DEFAULT_CONVERGENCE_FRACTION,
            centered: true,
            tolerance: Some(1e-6),
            explicit_epsilon: None,
            threads: Threads::Serial,
        }
    }
}

/// The outcome of a propagation run.
#[derive(Debug, Clone)]
pub struct PropagationResult {
    /// Final belief matrix `F` (`n x k`).
    pub beliefs: DenseMatrix,
    /// Predicted class per node (`argmax` of each belief row).
    pub predictions: Vec<usize>,
    /// Number of iterations actually executed.
    pub iterations: usize,
    /// Whether the early-stopping tolerance was reached before `max_iterations`.
    pub converged: bool,
    /// The scaling factor `ε` that was applied to `H`.
    pub epsilon: f64,
}

impl PropagationResult {
    /// End-to-end macro-averaged accuracy on the unlabeled nodes.
    pub fn accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        metrics::unlabeled_accuracy(&self.predictions, truth, seeds)
    }
}

/// Compute the convergence scaling factor `ε = s / (ρ(W)·ρ(H̃))` (Eq. 2).
///
/// Returns `ε = s` when either spectral radius is (numerically) zero, which only happens
/// for degenerate graphs with no edges or an exactly uniform compatibility matrix; in
/// both cases propagation is a no-op so any finite scaling works.
pub fn convergence_epsilon(graph: &Graph, h: &DenseMatrix, fraction: f64) -> Result<f64> {
    let rho_w = graph.spectral_radius()?;
    let h_centered = h.centered();
    let rho_h = spectral_radius_dense(&h_centered, 1000, 1e-10).map_err(GraphError::Sparse)?;
    if rho_w <= 1e-12 || rho_h <= 1e-12 {
        return Ok(fraction);
    }
    Ok(fraction / (rho_w * rho_h))
}

/// Run LinBP label propagation.
///
/// * `graph` — the undirected graph (`W`).
/// * `seeds` — the observed labels, encoded as explicit beliefs `X`.
/// * `h` — a `k x k` compatibility matrix (need not be centered).
/// * `config` — iteration and scaling parameters.
pub fn propagate(
    graph: &Graph,
    seeds: &SeedLabels,
    h: &DenseMatrix,
    config: &LinBpConfig,
) -> Result<PropagationResult> {
    if seeds.n() != graph.num_nodes() {
        return Err(GraphError::InvalidLabels(format!(
            "seed labels cover {} nodes but graph has {}",
            seeds.n(),
            graph.num_nodes()
        )));
    }
    if h.rows() != seeds.k() || h.cols() != seeds.k() {
        return Err(GraphError::InvalidCompatibility(format!(
            "H is {}x{} but k = {}",
            h.rows(),
            h.cols(),
            seeds.k()
        )));
    }
    let epsilon = match config.explicit_epsilon {
        Some(e) => e,
        None => convergence_epsilon(graph, h, config.convergence_fraction)?,
    };

    let x_raw = seeds.to_matrix();
    let (x, h_used) = if config.centered {
        (prior_residuals(seeds), h.centered())
    } else {
        (x_raw, h.clone())
    };
    let h_eff = h_used.scaled(epsilon);

    let w = graph.adjacency();
    let mut f = x.clone();
    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..config.max_iterations {
        // F_next = X + W (F Hε): the inner product keeps everything n x k.
        let fh = f.matmul(&h_eff).map_err(GraphError::Sparse)?;
        let wfh = w
            .spmm_dense_with(&fh, config.threads)
            .map_err(GraphError::Sparse)?;
        let f_next = x.add(&wfh).map_err(GraphError::Sparse)?;
        iterations += 1;
        if let Some(tol) = config.tolerance {
            let delta = max_abs_diff(&f, &f_next);
            if delta <= tol {
                f = f_next;
                converged = true;
                break;
            }
        }
        f = f_next;
    }

    let predictions = label(&f);
    Ok(PropagationResult {
        beliefs: f,
        predictions,
        iterations,
        converged,
        epsilon,
    })
}

/// The residual prior-belief matrix `X̃`: labeled nodes get a centered one-hot row
/// (`1 - 1/k` on their class, `-1/k` elsewhere), unlabeled nodes stay at zero.
fn prior_residuals(seeds: &SeedLabels) -> DenseMatrix {
    let k = seeds.k();
    let mut x = DenseMatrix::zeros(seeds.n(), k);
    for i in 0..seeds.n() {
        if let Some(c) = seeds.get(i) {
            for j in 0..k {
                x.set(
                    i,
                    j,
                    if j == c {
                        1.0 - 1.0 / k as f64
                    } else {
                        -1.0 / k as f64
                    },
                );
            }
        }
    }
    x
}

/// Assign each node the class with maximum belief (the paper's `label(F)` operation).
///
/// **Tie policy** (explicit and deterministic): ties are broken toward the **lowest
/// class index**. In particular a node whose belief row carries *no information* —
/// every entry exactly equal, e.g. an isolated node after the uniform fallback in
/// [`crate::harmonic::harmonic_functions`] / [`crate::random_walk::multi_rank_walk`],
/// or any node untouched by propagation — is always assigned class 0. That default
/// keeps `label` total (every node gets a class, required by the paper's accuracy
/// protocol) but systematically inflates class-0 recall when many nodes are
/// seed-unreachable. Callers that must not count such rows as confident class-0
/// predictions should use [`label_or_abstain`] together with the abstain-aware
/// metrics ([`crate::metrics::abstaining_unlabeled_accuracy`]), which treat them as
/// abstentions instead.
pub fn label(beliefs: &DenseMatrix) -> Vec<usize> {
    (0..beliefs.rows()).map(|i| beliefs.argmax_row(i)).collect()
}

/// [`label`] with an explicit no-information case: nodes whose belief row has every
/// entry exactly equal (uniform fallback rows, all-zero rows — any row where the
/// argmax would be decided purely by the tie policy across *all* classes) return
/// `None` instead of class 0.
///
/// Deterministic by construction: the outcome depends only on the belief values.
/// Rows with a partial tie (two of three classes tied at the top) still resolve to
/// the lowest tied index, exactly like [`label`] — only the total tie, which carries
/// no class signal at all, abstains.
pub fn label_or_abstain(beliefs: &DenseMatrix) -> Vec<Option<usize>> {
    (0..beliefs.rows())
        .map(|i| {
            let row = beliefs.row(i);
            let first = row.first().copied();
            if row.iter().all(|&v| Some(v) == first) {
                None
            } else {
                Some(beliefs.argmax_row(i))
            }
        })
        .collect()
}

fn max_abs_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    a.data()
        .iter()
        .zip(b.data().iter())
        .fold(0.0, |acc, (&x, &y)| acc.max((x - y).abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::CompatibilityMatrix;

    /// A small heterophilous graph: two "classes" arranged as a bipartite-ish structure.
    /// Nodes 0..3 are class 0, nodes 4..7 are class 1; edges mostly cross classes.
    fn bipartite_graph() -> (Graph, Labeling) {
        let edges = [
            (0, 4),
            (0, 5),
            (1, 4),
            (1, 6),
            (2, 5),
            (2, 7),
            (3, 6),
            (3, 7),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        (graph, labeling)
    }

    fn heterophily_h() -> DenseMatrix {
        CompatibilityMatrix::from_rows(&[vec![0.1, 0.9], vec![0.9, 0.1]])
            .unwrap()
            .into_dense()
    }

    #[test]
    fn propagation_recovers_bipartite_classes() {
        let (graph, labeling) = bipartite_graph();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let result = propagate(&graph, &seeds, &heterophily_h(), &LinBpConfig::default()).unwrap();
        let acc = result.accuracy(&labeling, &seeds);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn homophily_matrix_on_heterophilous_graph_fails() {
        // Using the wrong (homophilous) compatibilities on a heterophilous graph must
        // hurt accuracy — this is the paper's core motivation.
        let (graph, labeling) = bipartite_graph();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let homophily = CompatibilityMatrix::from_rows(&[vec![0.9, 0.1], vec![0.1, 0.9]])
            .unwrap()
            .into_dense();
        let good = propagate(&graph, &seeds, &heterophily_h(), &LinBpConfig::default()).unwrap();
        let bad = propagate(&graph, &seeds, &homophily, &LinBpConfig::default()).unwrap();
        assert!(good.accuracy(&labeling, &seeds) > bad.accuracy(&labeling, &seeds));
    }

    #[test]
    fn centering_does_not_change_labels() {
        // Theorem 3.1: labels are identical with centered and uncentered propagation.
        let (graph, _labeling) = bipartite_graph();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, Some(0), Some(1), None, Some(1), None],
            2,
        )
        .unwrap();
        let h = heterophily_h();
        let centered = propagate(
            &graph,
            &seeds,
            &h,
            &LinBpConfig {
                centered: true,
                tolerance: None,
                max_iterations: 8,
                ..LinBpConfig::default()
            },
        )
        .unwrap();
        let uncentered = propagate(
            &graph,
            &seeds,
            &h,
            &LinBpConfig {
                centered: false,
                tolerance: None,
                max_iterations: 8,
                ..LinBpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(centered.predictions, uncentered.predictions);
    }

    #[test]
    fn epsilon_respects_convergence_condition() {
        let (graph, _) = bipartite_graph();
        let h = heterophily_h();
        let eps = convergence_epsilon(&graph, &h, 0.5).unwrap();
        let rho_w = graph.spectral_radius().unwrap();
        let rho_h = spectral_radius_dense(&h.centered(), 1000, 1e-10).unwrap();
        // eps * rho_h must stay below 1 / rho_w with fraction 0.5.
        assert!(eps * rho_h < 1.0 / rho_w);
        assert!((eps * rho_h * rho_w - 0.5).abs() < 1e-9);
    }

    #[test]
    fn explicit_epsilon_is_used() {
        let (graph, _) = bipartite_graph();
        let seeds = SeedLabels::new(vec![Some(0); 8], 2).unwrap();
        let cfg = LinBpConfig {
            explicit_epsilon: Some(0.123),
            ..LinBpConfig::default()
        };
        let result = propagate(&graph, &seeds, &heterophily_h(), &cfg).unwrap();
        assert_eq!(result.epsilon, 0.123);
    }

    #[test]
    fn centered_propagation_converges() {
        let (graph, _) = bipartite_graph();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let cfg = LinBpConfig {
            max_iterations: 200,
            tolerance: Some(1e-10),
            ..LinBpConfig::default()
        };
        let result = propagate(&graph, &seeds, &heterophily_h(), &cfg).unwrap();
        assert!(result.converged);
        assert!(result.iterations < 200);
    }

    #[test]
    fn dimension_validation() {
        let (graph, _) = bipartite_graph();
        let seeds_wrong_n = SeedLabels::new(vec![Some(0), None], 2).unwrap();
        assert!(propagate(
            &graph,
            &seeds_wrong_n,
            &heterophily_h(),
            &LinBpConfig::default()
        )
        .is_err());
        let seeds = SeedLabels::new(vec![None; 8], 2).unwrap();
        let wrong_h = DenseMatrix::zeros(3, 3);
        assert!(propagate(&graph, &seeds, &wrong_h, &LinBpConfig::default()).is_err());
    }

    #[test]
    fn no_seeds_gives_trivial_beliefs() {
        let (graph, _) = bipartite_graph();
        let seeds = SeedLabels::new(vec![None; 8], 2).unwrap();
        let result = propagate(&graph, &seeds, &heterophily_h(), &LinBpConfig::default()).unwrap();
        assert!(result.beliefs.max_abs() < 1e-12);
    }

    #[test]
    fn label_extracts_argmax() {
        let f = DenseMatrix::from_rows(&[vec![0.1, 0.9], vec![0.8, 0.2]]).unwrap();
        assert_eq!(label(&f), vec![1, 0]);
    }

    #[test]
    fn label_tie_policy_and_abstain_variant() {
        let f = DenseMatrix::from_rows(&[
            vec![0.1, 0.9, 0.0],    // informed: class 1
            vec![0.5, 0.5, 0.5],    // exactly uniform: tie policy says 0, abstain says None
            vec![0.0, 0.0, 0.0],    // all-zero (untouched by propagation): same treatment
            vec![0.4, 0.4, 0.2],    // partial tie: lowest tied index, no abstention
            vec![-0.2, -0.2, -0.2], // uniform negative residuals: no information
        ])
        .unwrap();
        // The documented deterministic tie policy: lowest class index.
        assert_eq!(label(&f), vec![1, 0, 0, 0, 0]);
        // The abstain-aware variant only differs on total ties.
        assert_eq!(
            label_or_abstain(&f),
            vec![Some(1), None, None, Some(0), None]
        );
    }

    #[test]
    fn example_c1_uncentered_labels_match_centered_even_when_diverging() {
        // Example C.1: with the h=8 matrix the uncentered iteration can diverge in
        // magnitude, but the per-iteration argmax labels still match the centered run.
        let (graph, _) = bipartite_graph();
        let seeds = SeedLabels::new(
            vec![Some(0), None, Some(0), None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let h = CompatibilityMatrix::from_rows(&[vec![0.1, 0.9], vec![0.9, 0.1]])
            .unwrap()
            .into_dense();
        // Scale slightly above the convergence threshold for the uncentered version.
        let eps = convergence_epsilon(&graph, &h, 1.18).unwrap();
        let centered = propagate(
            &graph,
            &seeds,
            &h,
            &LinBpConfig {
                explicit_epsilon: Some(eps),
                centered: true,
                tolerance: None,
                max_iterations: 15,
                ..LinBpConfig::default()
            },
        )
        .unwrap();
        let uncentered = propagate(
            &graph,
            &seeds,
            &h,
            &LinBpConfig {
                explicit_epsilon: Some(eps),
                centered: false,
                tolerance: None,
                max_iterations: 15,
                ..LinBpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(centered.predictions, uncentered.predictions);
        // The uncentered beliefs blow up in magnitude relative to the centered ones.
        assert!(uncentered.beliefs.max_abs() >= centered.beliefs.max_abs());
    }
}
