//! By-name lookup of propagation backends, for CLIs, benchmarks, and config files.
//!
//! Every [`Propagator`] implementation registers a canonical name plus aliases, and a
//! constructor that accepts generic [`PropagatorOptions`] overrides, so callers can
//! build `fg propagate --method bp --iterations 30` style invocations without knowing
//! the concrete config types.

use crate::bp::BpConfig;
use crate::harmonic::HarmonicConfig;
use crate::linbp::LinBpConfig;
use crate::propagator::{Harmonic, LinBp, LoopyBp, Propagator, RandomWalk};
use crate::random_walk::RandomWalkConfig;
use fg_sparse::Threads;

/// Backend-agnostic configuration overrides understood by every registered backend.
/// `None` fields keep the backend's default.
#[derive(Debug, Clone, Default)]
pub struct PropagatorOptions {
    /// Maximum number of iterations.
    pub max_iterations: Option<usize>,
    /// Early-stopping tolerance (interpreted per backend).
    pub tolerance: Option<f64>,
    /// Continuation probability for random walks / damping factor for loopy BP.
    /// Ignored by backends without such a knob.
    pub damping: Option<f64>,
    /// Thread policy for the backend's parallel kernels (`fg --threads N`). All
    /// backends honor it; results are bit-identical at any thread count.
    pub threads: Option<Threads>,
}

/// A registry entry: canonical name, accepted aliases, a one-line description, and a
/// constructor honoring [`PropagatorOptions`].
pub struct PropagatorSpec {
    /// Canonical lowercase name (what [`canonical_name`] returns).
    pub name: &'static str,
    /// Alternative names accepted by [`by_name`].
    pub aliases: &'static [&'static str],
    /// One-line human-readable description for help output.
    pub description: &'static str,
    /// Build the backend with the given option overrides.
    pub build: fn(&PropagatorOptions) -> Box<dyn Propagator>,
}

fn build_linbp(opts: &PropagatorOptions) -> Box<dyn Propagator> {
    let mut config = LinBpConfig::default();
    if let Some(it) = opts.max_iterations {
        config.max_iterations = it;
    }
    if let Some(tol) = opts.tolerance {
        config.tolerance = Some(tol);
    }
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    Box::new(LinBp::new(config))
}

fn build_bp(opts: &PropagatorOptions) -> Box<dyn Propagator> {
    let mut config = BpConfig::default();
    if let Some(it) = opts.max_iterations {
        config.max_iterations = it;
    }
    if let Some(tol) = opts.tolerance {
        config.tolerance = tol;
    }
    if let Some(d) = opts.damping {
        config.damping = d;
    }
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    Box::new(LoopyBp::new(config))
}

fn build_harmonic(opts: &PropagatorOptions) -> Box<dyn Propagator> {
    let mut config = HarmonicConfig::default();
    if let Some(it) = opts.max_iterations {
        config.max_iterations = it;
    }
    if let Some(tol) = opts.tolerance {
        config.tolerance = tol;
    }
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    Box::new(Harmonic::new(config))
}

fn build_rw(opts: &PropagatorOptions) -> Box<dyn Propagator> {
    let mut config = RandomWalkConfig::default();
    if let Some(it) = opts.max_iterations {
        config.max_iterations = it;
    }
    if let Some(tol) = opts.tolerance {
        config.tolerance = tol;
    }
    if let Some(d) = opts.damping {
        config.damping = d;
    }
    if let Some(threads) = opts.threads {
        config.threads = threads;
    }
    Box::new(RandomWalk::new(config))
}

const REGISTRY: &[PropagatorSpec] = &[
    PropagatorSpec {
        name: "linbp",
        aliases: &["linearized-bp", "linearized_bp"],
        description: "Linearized Belief Propagation (the paper's method; uses H)",
        build: build_linbp,
    },
    PropagatorSpec {
        name: "bp",
        aliases: &["loopybp", "loopy-bp", "loopy_bp"],
        description: "Full loopy Belief Propagation (reference method; uses H)",
        build: build_bp,
    },
    PropagatorSpec {
        name: "harmonic",
        aliases: &["harmonic-functions", "homophily"],
        description: "Harmonic-functions label propagation (homophily baseline; ignores H)",
        build: build_harmonic,
    },
    PropagatorSpec {
        name: "rw",
        aliases: &["randomwalk", "random-walk", "random_walk", "mrw"],
        description: "MultiRankWalk random walks with restarts (homophily baseline; ignores H)",
        build: build_rw,
    },
];

/// All registered backend specs, in registration order.
pub fn registry() -> &'static [PropagatorSpec] {
    REGISTRY
}

/// The canonical names of all registered backends (the values `fg propagate --method`
/// accepts).
pub fn propagator_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|s| s.name).collect()
}

/// Resolve a (case-insensitive) name or alias to its canonical backend name.
pub fn canonical_name(name: &str) -> Option<&'static str> {
    let lowered = name.to_ascii_lowercase();
    REGISTRY
        .iter()
        .find(|s| s.name == lowered || s.aliases.contains(&lowered.as_str()))
        .map(|s| s.name)
}

/// Build a backend by name or alias with default configuration.
pub fn by_name(name: &str) -> Option<Box<dyn Propagator>> {
    by_name_with(name, &PropagatorOptions::default())
}

/// Build a backend by name or alias, applying the given option overrides.
pub fn by_name_with(name: &str, opts: &PropagatorOptions) -> Option<Box<dyn Propagator>> {
    let canonical = canonical_name(name)?;
    REGISTRY
        .iter()
        .find(|s| s.name == canonical)
        .map(|s| (s.build)(opts))
}

/// Build every registered backend with default configuration, in registration order.
pub fn all_propagators() -> Vec<Box<dyn Propagator>> {
    let opts = PropagatorOptions::default();
    REGISTRY.iter().map(|s| (s.build)(&opts)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_names_and_aliases_resolve() {
        assert_eq!(canonical_name("linbp"), Some("linbp"));
        assert_eq!(canonical_name("LinBP"), Some("linbp"));
        assert_eq!(canonical_name("loopy-bp"), Some("bp"));
        assert_eq!(canonical_name("RandomWalk"), Some("rw"));
        assert_eq!(canonical_name("homophily"), Some("harmonic"));
        assert_eq!(canonical_name("nope"), None);
    }

    #[test]
    fn by_name_builds_every_backend() {
        for name in propagator_names() {
            let p = by_name(name).unwrap();
            assert!(!p.name().is_empty());
        }
        assert!(by_name("unknown").is_none());
        assert_eq!(propagator_names().len(), 4);
    }

    #[test]
    fn options_are_applied() {
        let opts = PropagatorOptions {
            max_iterations: Some(3),
            ..PropagatorOptions::default()
        };
        // Smoke test: a 3-iteration LinBP on a tiny graph reports <= 3 iterations.
        let p = by_name_with("linbp", &opts).unwrap();
        let graph = fg_graph::Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let seeds = fg_graph::SeedLabels::new(vec![Some(0), None, None, Some(1)], 2).unwrap();
        let h = fg_sparse::DenseMatrix::from_rows(&[vec![0.3, 0.7], vec![0.7, 0.3]]).unwrap();
        let outcome = p.propagate(&graph, &seeds, &h).unwrap();
        assert!(outcome.iterations <= 3);
    }

    #[test]
    fn threads_option_reaches_every_backend() {
        // A 4-thread build must produce exactly the serial outcome on every backend
        // (the parallel kernels are bit-identical).
        let graph =
            fg_graph::Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let seeds =
            fg_graph::SeedLabels::new(vec![Some(0), None, None, None, None, Some(1)], 2).unwrap();
        let h = fg_sparse::DenseMatrix::from_rows(&[vec![0.8, 0.2], vec![0.2, 0.8]]).unwrap();
        let threaded = PropagatorOptions {
            threads: Some(Threads::Fixed(4)),
            ..PropagatorOptions::default()
        };
        for name in propagator_names() {
            let serial = by_name(name)
                .unwrap()
                .propagate(&graph, &seeds, &h)
                .unwrap();
            let parallel = by_name_with(name, &threaded)
                .unwrap()
                .propagate(&graph, &seeds, &h)
                .unwrap();
            assert_eq!(serial.beliefs.data(), parallel.beliefs.data(), "{name}");
            assert_eq!(serial.predictions, parallel.predictions, "{name}");
            assert_eq!(serial.iterations, parallel.iterations, "{name}");
        }
    }

    #[test]
    fn all_propagators_covers_registry() {
        let all = all_propagators();
        assert_eq!(all.len(), registry().len());
        let names: Vec<String> = all.iter().map(|p| p.name()).collect();
        assert!(names.contains(&"LinBP".to_string()));
        assert!(names.contains(&"LoopyBP".to_string()));
        assert!(names.contains(&"Harmonic".to_string()));
        assert!(names.contains(&"RandomWalk".to_string()));
    }
}
