//! Harmonic-functions label propagation (Zhu, Ghahramani & Lafferty 2003).
//!
//! The classic homophily-based SSL method used as the "Homophily" baseline in Fig. 6i of
//! the paper: beliefs of unlabeled nodes are repeatedly replaced by the (degree-
//! normalized) average of their neighbors' beliefs while labeled nodes stay clamped to
//! their observed one-hot labels.

use crate::linbp::label;
use fg_graph::{Graph, GraphError, Result, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// Configuration for harmonic-functions propagation.
#[derive(Debug, Clone)]
pub struct HarmonicConfig {
    /// Maximum number of averaging iterations.
    pub max_iterations: usize,
    /// Early-stopping tolerance on the maximum absolute belief change.
    pub tolerance: f64,
    /// Thread policy for the sparse kernels. The parallel kernels are bit-identical
    /// to the serial ones, so this only changes wall-clock time, never the result.
    pub threads: Threads,
}

impl Default for HarmonicConfig {
    fn default() -> Self {
        HarmonicConfig {
            max_iterations: 200,
            tolerance: 1e-8,
            threads: Threads::Serial,
        }
    }
}

/// Result of harmonic-functions propagation.
#[derive(Debug, Clone)]
pub struct HarmonicResult {
    /// Final beliefs (`n x k`), rows of labeled nodes clamped to their labels.
    pub beliefs: DenseMatrix,
    /// Predicted class per node.
    pub predictions: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Run harmonic-functions propagation (the homophily baseline).
///
/// Unlabeled nodes that never receive any mass — isolated nodes, and nodes in
/// components containing no seed — would otherwise keep an all-zero belief row that
/// [`label`] silently ties to class 0, inflating class-0 recall. Those rows fall back
/// to the uniform belief `1/k`, which makes "no information" explicit in the beliefs
/// (the argmax still resolves to class 0 through `label`'s documented deterministic
/// tie-break).
pub fn harmonic_functions(
    graph: &Graph,
    seeds: &SeedLabels,
    config: &HarmonicConfig,
) -> Result<HarmonicResult> {
    let n = graph.num_nodes();
    if seeds.n() != n {
        return Err(GraphError::InvalidLabels(format!(
            "seed labels cover {} nodes but graph has {}",
            seeds.n(),
            n
        )));
    }
    let k = seeds.k();
    let w_row = graph.adjacency().row_normalized();
    let clamp = seeds.to_matrix();

    let mut f = clamp.clone();
    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..config.max_iterations {
        let mut f_next = w_row
            .spmm_dense_with(&f, config.threads)
            .map_err(GraphError::Sparse)?;
        // Clamp labeled nodes back to their observed labels.
        for i in 0..n {
            if seeds.get(i).is_some() {
                for j in 0..k {
                    f_next.set(i, j, clamp.get(i, j));
                }
            }
        }
        iterations += 1;
        let delta = f
            .data()
            .iter()
            .zip(f_next.data().iter())
            .fold(0.0f64, |acc, (&a, &b)| acc.max((a - b).abs()));
        f = f_next;
        if delta <= config.tolerance {
            converged = true;
            break;
        }
    }

    uniform_fallback_for_zero_rows(&mut f, seeds);
    let predictions = label(&f);
    Ok(HarmonicResult {
        beliefs: f,
        predictions,
        iterations,
        converged,
    })
}

/// Replace the all-zero belief rows of unlabeled nodes with the uniform distribution
/// `1/k`. Zero rows arise exactly for nodes no seed mass can reach (isolated nodes,
/// seedless components); leaving them at zero would present "no information" as a
/// maximally confident all-zero row.
pub(crate) fn uniform_fallback_for_zero_rows(f: &mut DenseMatrix, seeds: &SeedLabels) {
    let k = f.cols();
    if k == 0 {
        return;
    }
    let uniform = 1.0 / k as f64;
    for i in 0..f.rows() {
        if seeds.get(i).is_none() && f.row(i).iter().all(|&v| v == 0.0) {
            for v in f.row_mut(i) {
                *v = uniform;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::unlabeled_accuracy;
    use fg_graph::Labeling;

    fn two_clusters() -> (Graph, Labeling, SeedLabels) {
        let edges = [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (0, 3),
            (4, 5),
            (4, 6),
            (5, 6),
            (6, 7),
            (4, 7),
            (3, 4),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, None, Some(1), None, None],
            2,
        )
        .unwrap();
        (graph, labeling, seeds)
    }

    #[test]
    fn homophilous_graph_is_labeled_correctly() {
        let (graph, labeling, seeds) = two_clusters();
        let result = harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).unwrap();
        let acc = unlabeled_accuracy(&result.predictions, &labeling, &seeds);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(result.converged);
    }

    #[test]
    fn labeled_nodes_stay_clamped() {
        let (graph, _, seeds) = two_clusters();
        let result = harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).unwrap();
        assert_eq!(result.beliefs.get(0, 0), 1.0);
        assert_eq!(result.beliefs.get(0, 1), 0.0);
        assert_eq!(result.beliefs.get(5, 1), 1.0);
    }

    #[test]
    fn heterophilous_graph_defeats_harmonic_functions() {
        // Bipartite heterophily: the smoothness assumption is exactly wrong.
        let edges = [
            (0, 4),
            (0, 5),
            (1, 4),
            (1, 6),
            (2, 5),
            (2, 7),
            (3, 6),
            (3, 7),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let result = harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).unwrap();
        let acc = unlabeled_accuracy(&result.predictions, &labeling, &seeds);
        assert!(acc < 0.75, "harmonic functions should struggle, got {acc}");
    }

    #[test]
    fn beliefs_stay_in_unit_interval() {
        let (graph, _, seeds) = two_clusters();
        let result = harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).unwrap();
        for &v in result.beliefs.data() {
            assert!((0.0..=1.0 + 1e-12).contains(&v));
        }
    }

    #[test]
    fn size_mismatch_rejected() {
        let (graph, _, _) = two_clusters();
        let seeds = SeedLabels::new(vec![None; 2], 2).unwrap();
        assert!(harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).is_err());
    }
}
