//! The unified propagation API: the [`Propagator`] trait, the [`PropagationOutcome`]
//! result type shared by every backend, and a by-name [`registry`](crate::registry)
//! for CLI and benchmark lookup.
//!
//! The paper's headline workflow (Problem 1.2) is a two-stage pipeline — estimate the
//! compatibility matrix `H`, then propagate the seed labels. This module gives the
//! second stage the same shape the first one already has (`CompatibilityEstimator`):
//! every propagation algorithm — LinBP, loopy BP, harmonic functions, random walks —
//! is a [`Propagator`], so pipelines, CLIs, and benchmarks can swap backends without
//! caring which concrete algorithm runs underneath.

use crate::bp::{propagate_bp, BpConfig};
use crate::harmonic::{harmonic_functions, HarmonicConfig};
use crate::linbp::{propagate, LinBpConfig};
use crate::metrics;
use crate::random_walk::{multi_rank_walk, RandomWalkConfig};
use fg_graph::{Graph, Labeling, Result, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// The unified result of any propagation backend.
///
/// Backend-specific result types ([`crate::linbp::PropagationResult`],
/// [`crate::bp::BpResult`], …) remain available through the free functions; the trait
/// surface always returns this type so callers can compare backends uniformly.
#[derive(Debug, Clone)]
pub struct PropagationOutcome {
    /// Name of the backend that produced this outcome (e.g. `"LinBP"`).
    pub method: String,
    /// Final belief/score matrix (`n x k`). The scale is backend-specific (residual
    /// beliefs for LinBP, normalized probabilities for BP, clamped averages for
    /// harmonic functions, visit scores for random walks); the argmax is what is
    /// comparable across backends.
    pub beliefs: DenseMatrix,
    /// Predicted class per node (`argmax` of each belief row).
    pub predictions: Vec<usize>,
    /// Number of iterations actually executed.
    pub iterations: usize,
    /// Whether the backend's early-stopping criterion was reached before the
    /// iteration budget.
    pub converged: bool,
    /// The convergence scaling factor `ε` applied to `H`, for backends that have one
    /// (LinBP); `None` for backends without a spectral scaling step.
    pub epsilon: Option<f64>,
}

impl PropagationOutcome {
    /// Macro-averaged accuracy on the unlabeled nodes (the unweighted mean of the
    /// per-class recalls; robust to class imbalance).
    pub fn accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        metrics::unlabeled_accuracy(&self.predictions, truth, seeds)
    }

    /// Micro (plain) accuracy on the unlabeled nodes: the paper's "fraction of the
    /// remaining nodes that receive correct labels".
    pub fn micro_accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        metrics::unlabeled_micro_accuracy(&self.predictions, truth, seeds)
    }

    /// Abstain-aware predictions: like [`PropagationOutcome::predictions`] but
    /// no-information belief rows (every entry exactly equal — e.g. seed-unreachable
    /// nodes after the uniform fallback) return `None` instead of the tie-policy
    /// default of class 0. See [`crate::linbp::label_or_abstain`].
    pub fn predictions_or_abstain(&self) -> Vec<Option<usize>> {
        crate::linbp::label_or_abstain(&self.beliefs)
    }

    /// Macro-averaged accuracy on the unlabeled nodes with abstentions counted as
    /// incorrect — the recall-inflation-free variant of
    /// [`accuracy`](PropagationOutcome::accuracy): uniform belief rows no longer
    /// masquerade as correct class-0 predictions.
    pub fn abstaining_accuracy(&self, truth: &Labeling, seeds: &SeedLabels) -> f64 {
        metrics::abstaining_unlabeled_accuracy(&self.predictions_or_abstain(), truth, seeds)
    }
}

/// A label-propagation backend: consumes a graph, seed labels, and a `k x k`
/// compatibility matrix, and produces beliefs/predictions for every node.
///
/// Mirrors `CompatibilityEstimator` on the estimation side. Backends that do not use
/// compatibilities (the homophily baselines) ignore `h` and advertise it through
/// [`Propagator::uses_compatibilities`].
pub trait Propagator {
    /// Display name used in reports and tables (e.g. `"LinBP"`). Owned so
    /// parameterized names like `"LinBP(iters=50)"` can be built dynamically.
    fn name(&self) -> String;

    /// Whether this backend reads the compatibility matrix at all. Pipelines can skip
    /// the estimation stage (or warn) when it returns `false`.
    fn uses_compatibilities(&self) -> bool {
        true
    }

    /// Run propagation. `h` must be `k x k` for backends that use compatibilities;
    /// backends with `uses_compatibilities() == false` accept any `h` and ignore it.
    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        h: &DenseMatrix,
    ) -> Result<PropagationOutcome>;

    /// Return a copy of this backend with its [`Threads`] policy replaced. The
    /// parallel kernels are bit-identical to the serial ones, so the returned backend
    /// produces exactly the same outcome, only faster on multi-core hardware. This is
    /// how `fg_core::Pipeline::threads` injects a thread policy through `dyn
    /// Propagator` without knowing the concrete config type.
    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator>;
}

impl<P: Propagator + ?Sized> Propagator for &P {
    fn name(&self) -> String {
        (**self).name()
    }

    fn uses_compatibilities(&self) -> bool {
        (**self).uses_compatibilities()
    }

    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        h: &DenseMatrix,
    ) -> Result<PropagationOutcome> {
        (**self).propagate(graph, seeds, h)
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator> {
        (**self).with_threads(threads)
    }
}

impl Propagator for Box<dyn Propagator + '_> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn uses_compatibilities(&self) -> bool {
        (**self).uses_compatibilities()
    }

    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        h: &DenseMatrix,
    ) -> Result<PropagationOutcome> {
        (**self).propagate(graph, seeds, h)
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator> {
        (**self).with_threads(threads)
    }
}

/// Linearized Belief Propagation — the paper's method of choice (Section 2.3).
#[derive(Debug, Clone, Default)]
pub struct LinBp {
    /// Iteration and scaling parameters.
    pub config: LinBpConfig,
}

impl LinBp {
    /// Wrap an explicit configuration.
    pub fn new(config: LinBpConfig) -> Self {
        LinBp { config }
    }
}

impl Propagator for LinBp {
    fn name(&self) -> String {
        "LinBP".to_string()
    }

    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        h: &DenseMatrix,
    ) -> Result<PropagationOutcome> {
        let r = propagate(graph, seeds, h, &self.config)?;
        Ok(PropagationOutcome {
            method: self.name(),
            beliefs: r.beliefs,
            predictions: r.predictions,
            iterations: r.iterations,
            converged: r.converged,
            epsilon: Some(r.epsilon),
        })
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator> {
        Box::new(LinBp::new(LinBpConfig {
            threads,
            ..self.config.clone()
        }))
    }
}

/// Full loopy Belief Propagation — the reference algorithm LinBP linearizes.
#[derive(Debug, Clone, Default)]
pub struct LoopyBp {
    /// Message-passing parameters.
    pub config: BpConfig,
}

impl LoopyBp {
    /// Wrap an explicit configuration.
    pub fn new(config: BpConfig) -> Self {
        LoopyBp { config }
    }
}

impl Propagator for LoopyBp {
    fn name(&self) -> String {
        "LoopyBP".to_string()
    }

    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        h: &DenseMatrix,
    ) -> Result<PropagationOutcome> {
        let r = propagate_bp(graph, seeds, h, &self.config)?;
        Ok(PropagationOutcome {
            method: self.name(),
            beliefs: r.beliefs,
            predictions: r.predictions,
            iterations: r.iterations,
            converged: r.converged,
            epsilon: None,
        })
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator> {
        Box::new(LoopyBp::new(BpConfig {
            threads,
            ..self.config.clone()
        }))
    }
}

/// Harmonic-functions label propagation — the "Homophily" baseline of Fig. 6i.
/// Ignores the compatibility matrix entirely.
#[derive(Debug, Clone, Default)]
pub struct Harmonic {
    /// Averaging-iteration parameters.
    pub config: HarmonicConfig,
}

impl Harmonic {
    /// Wrap an explicit configuration.
    pub fn new(config: HarmonicConfig) -> Self {
        Harmonic { config }
    }
}

impl Propagator for Harmonic {
    fn name(&self) -> String {
        "Harmonic".to_string()
    }

    fn uses_compatibilities(&self) -> bool {
        false
    }

    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        _h: &DenseMatrix,
    ) -> Result<PropagationOutcome> {
        let r = harmonic_functions(graph, seeds, &self.config)?;
        Ok(PropagationOutcome {
            method: self.name(),
            beliefs: r.beliefs,
            predictions: r.predictions,
            iterations: r.iterations,
            converged: r.converged,
            epsilon: None,
        })
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator> {
        Box::new(Harmonic::new(HarmonicConfig {
            threads,
            ..self.config.clone()
        }))
    }
}

/// MultiRankWalk-style random walks with restarts — the homophily baseline of
/// Section 2.4. Ignores the compatibility matrix entirely.
#[derive(Debug, Clone, Default)]
pub struct RandomWalk {
    /// Walk parameters.
    pub config: RandomWalkConfig,
}

impl RandomWalk {
    /// Wrap an explicit configuration.
    pub fn new(config: RandomWalkConfig) -> Self {
        RandomWalk { config }
    }
}

impl Propagator for RandomWalk {
    fn name(&self) -> String {
        "RandomWalk".to_string()
    }

    fn uses_compatibilities(&self) -> bool {
        false
    }

    fn propagate(
        &self,
        graph: &Graph,
        seeds: &SeedLabels,
        _h: &DenseMatrix,
    ) -> Result<PropagationOutcome> {
        let r = multi_rank_walk(graph, seeds, &self.config)?;
        Ok(PropagationOutcome {
            method: self.name(),
            beliefs: r.scores,
            predictions: r.predictions,
            iterations: r.iterations,
            converged: r.converged,
            epsilon: None,
        })
    }

    fn with_threads(&self, threads: Threads) -> Box<dyn Propagator> {
        Box::new(RandomWalk::new(RandomWalkConfig {
            threads,
            ..self.config.clone()
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::CompatibilityMatrix;

    fn bipartite() -> (Graph, Labeling, SeedLabels, DenseMatrix) {
        let edges = [
            (0, 4),
            (0, 5),
            (1, 4),
            (1, 6),
            (2, 5),
            (2, 7),
            (3, 6),
            (3, 7),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let h = CompatibilityMatrix::from_rows(&[vec![0.1, 0.9], vec![0.9, 0.1]])
            .unwrap()
            .into_dense();
        (graph, labeling, seeds, h)
    }

    #[test]
    fn trait_outcomes_match_free_functions() {
        let (graph, _, seeds, h) = bipartite();
        let via_trait = LinBp::default().propagate(&graph, &seeds, &h).unwrap();
        let direct = propagate(&graph, &seeds, &h, &LinBpConfig::default()).unwrap();
        assert_eq!(via_trait.predictions, direct.predictions);
        assert_eq!(via_trait.iterations, direct.iterations);
        assert_eq!(via_trait.epsilon, Some(direct.epsilon));
        assert_eq!(via_trait.method, "LinBP");
    }

    #[test]
    fn all_backends_produce_consistent_metadata() {
        let (graph, _, seeds, h) = bipartite();
        let backends: Vec<Box<dyn Propagator>> = vec![
            Box::new(LinBp::default()),
            Box::new(LoopyBp::default()),
            Box::new(Harmonic::default()),
            Box::new(RandomWalk::default()),
        ];
        for backend in &backends {
            let outcome = backend.propagate(&graph, &seeds, &h).unwrap();
            assert_eq!(outcome.method, backend.name());
            assert_eq!(outcome.predictions.len(), graph.num_nodes());
            assert_eq!(outcome.beliefs.rows(), graph.num_nodes());
            assert_eq!(outcome.beliefs.cols(), seeds.k());
            assert!(outcome.iterations >= 1);
            assert_eq!(outcome.epsilon.is_some(), backend.name() == "LinBP");
        }
    }

    #[test]
    fn compatibility_aware_backends_beat_homophily_baselines_under_heterophily() {
        let (graph, labeling, seeds, h) = bipartite();
        let linbp = LinBp::default().propagate(&graph, &seeds, &h).unwrap();
        let harmonic = Harmonic::default().propagate(&graph, &seeds, &h).unwrap();
        assert!(linbp.accuracy(&labeling, &seeds) > harmonic.accuracy(&labeling, &seeds));
    }

    #[test]
    fn outcome_abstains_on_no_information_rows() {
        // Node 8 is isolated: the uniform fallback gives it an all-equal belief row,
        // which the tie policy labels class 0 but the abstain-aware view rejects.
        let mut edges = vec![
            (0usize, 4usize),
            (0, 5),
            (1, 4),
            (1, 6),
            (2, 5),
            (2, 7),
            (3, 6),
            (3, 7),
        ];
        edges.push((4, 5)); // keep the component connected enough to converge
        let graph = Graph::from_edges(9, &edges).unwrap();
        // The isolated node's true class is 0: the tie policy "predicts" it
        // correctly by accident, which is exactly the recall inflation under test.
        let truth = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1, 0], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None, None],
            2,
        )
        .unwrap();
        let outcome = Harmonic::default()
            .propagate(&graph, &seeds, &DenseMatrix::zeros(2, 2))
            .unwrap();
        let abstaining = outcome.predictions_or_abstain();
        assert_eq!(abstaining[8], None, "isolated node must abstain");
        assert_eq!(outcome.predictions[8], 0, "tie policy defaults to class 0");
        assert!(abstaining[..8].iter().all(|p| p.is_some()));
        // The tie policy counts node 8 as a correct class-0 prediction (recall
        // inflation); the abstain-aware metric charges it as a miss, so it is
        // strictly lower.
        let plain = outcome.accuracy(&truth, &seeds);
        let informed = outcome.abstaining_accuracy(&truth, &seeds);
        assert!(
            informed < plain,
            "abstention must deflate class-0 recall: {informed} vs {plain}"
        );
    }

    #[test]
    fn uses_compatibilities_flags() {
        assert!(LinBp::default().uses_compatibilities());
        assert!(LoopyBp::default().uses_compatibilities());
        assert!(!Harmonic::default().uses_compatibilities());
        assert!(!RandomWalk::default().uses_compatibilities());
    }

    #[test]
    fn references_and_boxes_are_propagators() {
        let (graph, _, seeds, h) = bipartite();
        let concrete = LinBp::default();
        let by_ref: &dyn Propagator = &concrete;
        let boxed: Box<dyn Propagator> = Box::new(LinBp::default());
        assert_eq!(by_ref.name(), boxed.name());
        let a = concrete.propagate(&graph, &seeds, &h).unwrap();
        let b = boxed.propagate(&graph, &seeds, &h).unwrap();
        assert_eq!(a.predictions, b.predictions);
    }
}
