//! Classification quality metrics.
//!
//! The paper evaluates end-to-end accuracy as the fraction of *unlabeled* nodes that
//! receive correct labels and, to account for class imbalance, macro-averages the
//! per-class accuracies (Section 5, "Quality assessment").

use fg_graph::{Labeling, SeedLabels};

/// Plain accuracy over a set of evaluation nodes: fraction of nodes whose predicted
/// class equals the ground truth. Returns 0 for an empty evaluation set.
pub fn accuracy(predictions: &[usize], truth: &Labeling, eval_nodes: &[usize]) -> f64 {
    if eval_nodes.is_empty() {
        return 0.0;
    }
    let correct = eval_nodes
        .iter()
        .filter(|&&i| predictions[i] == truth.class_of(i))
        .count();
    correct as f64 / eval_nodes.len() as f64
}

/// Macro-averaged accuracy over a set of evaluation nodes: the unweighted mean of the
/// per-class recalls, which prevents a dominant class from hiding mistakes on rare
/// classes. Classes with no evaluation nodes are skipped.
pub fn macro_accuracy(predictions: &[usize], truth: &Labeling, eval_nodes: &[usize]) -> f64 {
    let k = truth.k();
    let mut per_class_total = vec![0usize; k];
    let mut per_class_correct = vec![0usize; k];
    for &i in eval_nodes {
        let c = truth.class_of(i);
        per_class_total[c] += 1;
        if predictions[i] == c {
            per_class_correct[c] += 1;
        }
    }
    let mut sum = 0.0;
    let mut classes = 0;
    for c in 0..k {
        if per_class_total[c] > 0 {
            sum += per_class_correct[c] as f64 / per_class_total[c] as f64;
            classes += 1;
        }
    }
    if classes == 0 {
        0.0
    } else {
        sum / classes as f64
    }
}

/// **Macro-averaged** accuracy evaluated on the unlabeled nodes of a seed set: the
/// unweighted mean of the per-class recalls over the remaining (unlabeled) nodes, as
/// computed by [`macro_accuracy`]. This is the class-imbalance-robust variant the
/// paper reports alongside the micro metric (Section 5, "Quality assessment"); for
/// the paper's literal "fraction of the remaining nodes that receive correct labels"
/// use [`unlabeled_micro_accuracy`].
///
/// For a fully labeled seed set there are no remaining nodes to classify; the metric then
/// falls back to evaluating over all nodes (a propagation that preserves the given labels
/// scores 1.0), which keeps sparsity sweeps that include `f = 1` meaningful.
pub fn unlabeled_accuracy(predictions: &[usize], truth: &Labeling, seeds: &SeedLabels) -> f64 {
    let unlabeled = seeds.unlabeled_nodes();
    if unlabeled.is_empty() {
        let all: Vec<usize> = (0..truth.n()).collect();
        return macro_accuracy(predictions, truth, &all);
    }
    macro_accuracy(predictions, truth, &unlabeled)
}

/// **Micro** (plain) accuracy evaluated on the unlabeled nodes of a seed set: the
/// paper's end-to-end metric, "the fraction of the remaining nodes that receive
/// correct labels". Unlike [`unlabeled_accuracy`] this weights every node equally, so
/// a dominant class can mask mistakes on rare classes.
///
/// Falls back to evaluating over all nodes when the seed set is fully labeled,
/// mirroring [`unlabeled_accuracy`].
pub fn unlabeled_micro_accuracy(
    predictions: &[usize],
    truth: &Labeling,
    seeds: &SeedLabels,
) -> f64 {
    let unlabeled = seeds.unlabeled_nodes();
    if unlabeled.is_empty() {
        let all: Vec<usize> = (0..truth.n()).collect();
        return accuracy(predictions, truth, &all);
    }
    accuracy(predictions, truth, &unlabeled)
}

/// Macro-averaged accuracy over abstain-aware predictions: the unweighted mean of the
/// per-class recalls where an abstention (`None`) counts as **incorrect** for its
/// true class. This is the deterministic fix for the class-0 recall inflation of the
/// total-label metrics: a no-information belief row labeled via the
/// [`label`](crate::linbp::label) tie policy counts as a correct class-0 prediction,
/// while the same row run through
/// [`label_or_abstain`](crate::linbp::label_or_abstain) abstains and is charged as a
/// miss — recall then reflects only informed predictions. Classes with no evaluation
/// nodes are skipped, exactly as in [`macro_accuracy`].
pub fn abstaining_macro_accuracy(
    predictions: &[Option<usize>],
    truth: &Labeling,
    eval_nodes: &[usize],
) -> f64 {
    let k = truth.k();
    let mut per_class_total = vec![0usize; k];
    let mut per_class_correct = vec![0usize; k];
    for &i in eval_nodes {
        let c = truth.class_of(i);
        per_class_total[c] += 1;
        if predictions[i] == Some(c) {
            per_class_correct[c] += 1;
        }
    }
    let mut sum = 0.0;
    let mut classes = 0;
    for c in 0..k {
        if per_class_total[c] > 0 {
            sum += per_class_correct[c] as f64 / per_class_total[c] as f64;
            classes += 1;
        }
    }
    if classes == 0 {
        0.0
    } else {
        sum / classes as f64
    }
}

/// [`abstaining_macro_accuracy`] evaluated on the unlabeled nodes of a seed set, with
/// the same fully-labeled fallback as [`unlabeled_accuracy`]. The abstain-aware
/// counterpart of the paper's end-to-end metric: abstentions (no-information belief
/// rows) count against their true class instead of silently landing on class 0.
pub fn abstaining_unlabeled_accuracy(
    predictions: &[Option<usize>],
    truth: &Labeling,
    seeds: &SeedLabels,
) -> f64 {
    let unlabeled = seeds.unlabeled_nodes();
    if unlabeled.is_empty() {
        let all: Vec<usize> = (0..truth.n()).collect();
        return abstaining_macro_accuracy(predictions, truth, &all);
    }
    abstaining_macro_accuracy(predictions, truth, &unlabeled)
}

/// Fraction of evaluation nodes whose prediction is an abstention. Together with
/// [`abstaining_macro_accuracy`] this separates "wrong" from "didn't know" — useful
/// when reporting results on graphs with seed-unreachable regions.
pub fn abstention_rate(predictions: &[Option<usize>], eval_nodes: &[usize]) -> f64 {
    if eval_nodes.is_empty() {
        return 0.0;
    }
    let abstained = eval_nodes
        .iter()
        .filter(|&&i| predictions[i].is_none())
        .count();
    abstained as f64 / eval_nodes.len() as f64
}

/// Accuracy evaluated on the labeled nodes of a holdout set (used by the Holdout
/// estimator, Section 4.1).
pub fn holdout_accuracy(predictions: &[usize], holdout: &SeedLabels) -> f64 {
    let nodes = holdout.labeled_nodes();
    if nodes.is_empty() {
        return 0.0;
    }
    let correct = nodes
        .iter()
        .filter(|&&i| Some(predictions[i]) == holdout.get(i))
        .count();
    correct as f64 / nodes.len() as f64
}

/// The `k x k` confusion matrix over a set of evaluation nodes; entry `(c, e)` counts
/// nodes of true class `c` predicted as class `e`.
pub fn confusion_matrix(
    predictions: &[usize],
    truth: &Labeling,
    eval_nodes: &[usize],
) -> Vec<Vec<usize>> {
    let k = truth.k();
    let mut m = vec![vec![0usize; k]; k];
    for &i in eval_nodes {
        m[truth.class_of(i)][predictions[i]] += 1;
    }
    m
}

/// Expected accuracy of uniformly random label assignment: `1/k`.
pub fn random_baseline(k: usize) -> f64 {
    if k == 0 {
        0.0
    } else {
        1.0 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> Labeling {
        Labeling::new(vec![0, 0, 1, 1, 2, 2], 3).unwrap()
    }

    #[test]
    fn perfect_predictions() {
        let t = truth();
        let preds = vec![0, 0, 1, 1, 2, 2];
        let all: Vec<usize> = (0..6).collect();
        assert_eq!(accuracy(&preds, &t, &all), 1.0);
        assert_eq!(macro_accuracy(&preds, &t, &all), 1.0);
    }

    #[test]
    fn all_wrong_predictions() {
        let t = truth();
        let preds = vec![1, 1, 2, 2, 0, 0];
        let all: Vec<usize> = (0..6).collect();
        assert_eq!(accuracy(&preds, &t, &all), 0.0);
        assert_eq!(macro_accuracy(&preds, &t, &all), 0.0);
    }

    #[test]
    fn accuracy_on_subset() {
        let t = truth();
        let preds = vec![0, 1, 1, 0, 2, 2];
        assert_eq!(accuracy(&preds, &t, &[0, 2, 4]), 1.0);
        assert_eq!(accuracy(&preds, &t, &[1, 3]), 0.0);
        assert_eq!(accuracy(&preds, &t, &[]), 0.0);
    }

    #[test]
    fn macro_accuracy_weights_classes_equally() {
        // Imbalanced truth: 4 of class 0, 1 of class 1.
        let t = Labeling::new(vec![0, 0, 0, 0, 1], 2).unwrap();
        // Predict class 0 everywhere: plain accuracy 0.8, macro accuracy 0.5.
        let preds = vec![0, 0, 0, 0, 0];
        let all: Vec<usize> = (0..5).collect();
        assert_eq!(accuracy(&preds, &t, &all), 0.8);
        assert_eq!(macro_accuracy(&preds, &t, &all), 0.5);
    }

    #[test]
    fn macro_accuracy_skips_absent_classes() {
        let t = truth();
        // Only evaluate nodes of classes 0 and 1.
        let preds = vec![0, 0, 1, 1, 0, 0];
        assert_eq!(macro_accuracy(&preds, &t, &[0, 1, 2, 3]), 1.0);
    }

    #[test]
    fn unlabeled_accuracy_uses_unlabeled_nodes_only() {
        let t = truth();
        let seeds = SeedLabels::new(vec![Some(0), None, Some(1), None, Some(2), None], 3).unwrap();
        // Wrong on the labeled nodes (ignored), right on unlabeled ones.
        let preds = vec![1, 0, 2, 1, 0, 2];
        assert_eq!(unlabeled_accuracy(&preds, &t, &seeds), 1.0);
        assert_eq!(unlabeled_micro_accuracy(&preds, &t, &seeds), 1.0);
    }

    #[test]
    fn micro_and_macro_diverge_under_class_imbalance() {
        // 4 unlabeled nodes of class 0, 1 unlabeled node of class 1; predicting class
        // 0 everywhere gives micro 0.8 but macro 0.5 — the mismatch the docstring of
        // `unlabeled_accuracy` used to paper over.
        let t = Labeling::new(vec![0, 0, 0, 0, 1, 0], 2).unwrap();
        let seeds = SeedLabels::new(vec![None, None, None, None, None, Some(0)], 2).unwrap();
        let preds = vec![0, 0, 0, 0, 0, 0];
        assert_eq!(unlabeled_micro_accuracy(&preds, &t, &seeds), 0.8);
        assert_eq!(unlabeled_accuracy(&preds, &t, &seeds), 0.5);
    }

    #[test]
    fn unlabeled_micro_accuracy_falls_back_when_fully_labeled() {
        let t = truth();
        let seeds = SeedLabels::fully_labeled(&t);
        assert_eq!(
            unlabeled_micro_accuracy(&[0, 0, 1, 1, 2, 2], &t, &seeds),
            1.0
        );
        assert_eq!(
            unlabeled_micro_accuracy(&[1, 1, 2, 2, 0, 0], &t, &seeds),
            0.0
        );
    }

    #[test]
    fn unlabeled_accuracy_falls_back_to_all_nodes_when_fully_labeled() {
        let t = truth();
        let seeds = SeedLabels::fully_labeled(&t);
        let perfect = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(unlabeled_accuracy(&perfect, &t, &seeds), 1.0);
        let wrong = vec![1, 1, 2, 2, 0, 0];
        assert_eq!(unlabeled_accuracy(&wrong, &t, &seeds), 0.0);
    }

    #[test]
    fn abstentions_do_not_inflate_class_zero_recall() {
        // Three unlabeled nodes of class 0 — one genuinely predicted, two with
        // no-information rows — plus one of class 1. Under the total-label tie
        // policy the uninformed nodes land on class 0 and recall(0) reads 1.0;
        // abstain-aware, they are charged as misses and recall(0) is 1/3.
        let t = Labeling::new(vec![0, 0, 0, 1, 0], 2).unwrap();
        let seeds = SeedLabels::new(vec![None, None, None, None, Some(0)], 2).unwrap();
        let tie_policy = vec![0, 0, 0, 1, 0];
        let abstaining = vec![Some(0), None, None, Some(1), Some(0)];
        assert_eq!(unlabeled_accuracy(&tie_policy, &t, &seeds), 1.0);
        let informed = abstaining_unlabeled_accuracy(&abstaining, &t, &seeds);
        assert!((informed - (1.0 / 3.0 + 1.0) / 2.0).abs() < 1e-12);
        assert_eq!(abstention_rate(&abstaining, &[0, 1, 2, 3]), 0.5);
        assert_eq!(abstention_rate(&abstaining, &[]), 0.0);
    }

    #[test]
    fn abstaining_macro_accuracy_matches_plain_when_nothing_abstains() {
        let t = truth();
        let preds = vec![0, 1, 1, 1, 2, 0];
        let wrapped: Vec<Option<usize>> = preds.iter().map(|&p| Some(p)).collect();
        let all: Vec<usize> = (0..6).collect();
        assert_eq!(
            abstaining_macro_accuracy(&wrapped, &t, &all),
            macro_accuracy(&preds, &t, &all)
        );
        let seeds = SeedLabels::fully_labeled(&t);
        let perfect: Vec<Option<usize>> =
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)];
        assert_eq!(abstaining_unlabeled_accuracy(&perfect, &t, &seeds), 1.0);
    }

    #[test]
    fn holdout_accuracy_counts_matches() {
        let holdout = SeedLabels::new(vec![Some(0), None, Some(1), None], 2).unwrap();
        let preds = vec![0, 1, 0, 1];
        assert_eq!(holdout_accuracy(&preds, &holdout), 0.5);
        let empty = SeedLabels::new(vec![None, None], 2).unwrap();
        assert_eq!(
            holdout_accuracy(preds[..2].to_vec().as_slice(), &empty),
            0.0
        );
    }

    #[test]
    fn confusion_matrix_entries() {
        let t = truth();
        let preds = vec![0, 1, 1, 1, 2, 0];
        let all: Vec<usize> = (0..6).collect();
        let m = confusion_matrix(&preds, &t, &all);
        assert_eq!(m[0][0], 1);
        assert_eq!(m[0][1], 1);
        assert_eq!(m[1][1], 2);
        assert_eq!(m[2][0], 1);
        assert_eq!(m[2][2], 1);
    }

    #[test]
    fn random_baseline_value() {
        assert_eq!(random_baseline(4), 0.25);
        assert_eq!(random_baseline(0), 0.0);
    }
}
