//! Random walks with restarts (MultiRankWalk-style baseline).
//!
//! Section 2.4 of the paper: homophily-based SSL methods run one personalized random
//! walk per class,
//!
//! ```text
//! F ← ᾱ U + α W_col F
//! ```
//!
//! where `U` holds the per-class normalized seed distributions and `W_col` is the
//! column-normalized adjacency matrix. After convergence, each node takes the class
//! with the maximum score. The method assumes homophily and therefore fails on
//! heterophilous graphs — which is exactly the comparison the paper draws (Fig. 6i).

use crate::harmonic::uniform_fallback_for_zero_rows;
use crate::linbp::label;
use fg_graph::{Graph, GraphError, Result, SeedLabels};
use fg_sparse::{DenseMatrix, Threads};

/// Configuration for random walks with restarts.
#[derive(Debug, Clone)]
pub struct RandomWalkConfig {
    /// Probability of continuing the walk (the paper's `α`); `1 - α` is the restart
    /// (teleport) probability.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// Early-stopping tolerance on the maximum absolute score change.
    pub tolerance: f64,
    /// Thread policy for the sparse kernels. The parallel kernels are bit-identical
    /// to the serial ones, so this only changes wall-clock time, never the result.
    pub threads: Threads,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-8,
            threads: Threads::Serial,
        }
    }
}

/// Result of a random-walk labeling run.
#[derive(Debug, Clone)]
pub struct RandomWalkResult {
    /// Final per-class ranking scores (`n x k`).
    pub scores: DenseMatrix,
    /// Predicted class per node.
    pub predictions: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Run MultiRankWalk: one random walk with restarts per class, teleporting to that
/// class's seed nodes.
///
/// Unlabeled nodes the walks can never visit — isolated nodes, and nodes with no path
/// from any seed — would otherwise keep an all-zero score row that [`label`] silently
/// ties to class 0, inflating class-0 recall. Those rows fall back to the uniform
/// score `1/k`, making "no information" explicit in the scores (the argmax still
/// resolves to class 0 through `label`'s documented deterministic tie-break).
pub fn multi_rank_walk(
    graph: &Graph,
    seeds: &SeedLabels,
    config: &RandomWalkConfig,
) -> Result<RandomWalkResult> {
    let n = graph.num_nodes();
    let k = seeds.k();
    if seeds.n() != n {
        return Err(GraphError::InvalidLabels(format!(
            "seed labels cover {} nodes but graph has {}",
            seeds.n(),
            n
        )));
    }
    if !(0.0..1.0).contains(&config.damping) {
        return Err(GraphError::InvalidGeneratorConfig(format!(
            "damping must be in [0, 1), got {}",
            config.damping
        )));
    }

    // Teleport matrix U: column c is the normalized indicator of class-c seed nodes.
    let mut teleport = DenseMatrix::zeros(n, k);
    let counts = seeds.class_counts();
    for i in 0..n {
        if let Some(c) = seeds.get(i) {
            if counts[c] > 0 {
                teleport.set(i, c, 1.0 / counts[c] as f64);
            }
        }
    }

    let w_col = graph.adjacency().column_normalized();
    let alpha = config.damping;
    let restart = 1.0 - alpha;

    let mut f = teleport.clone();
    let mut iterations = 0;
    let mut converged = false;
    for _ in 0..config.max_iterations {
        let walked = w_col
            .spmm_dense_with(&f, config.threads)
            .map_err(GraphError::Sparse)?;
        let f_next = teleport
            .scaled(restart)
            .add(&walked.scaled(alpha))
            .map_err(GraphError::Sparse)?;
        iterations += 1;
        let delta = f
            .data()
            .iter()
            .zip(f_next.data().iter())
            .fold(0.0f64, |acc, (&a, &b)| acc.max((a - b).abs()));
        f = f_next;
        if delta <= config.tolerance {
            converged = true;
            break;
        }
    }

    uniform_fallback_for_zero_rows(&mut f, seeds);
    let predictions = label(&f);
    Ok(RandomWalkResult {
        scores: f,
        predictions,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::unlabeled_accuracy;
    use fg_graph::Labeling;

    /// Two homophilous clusters joined by a single bridge edge.
    fn two_clusters() -> (Graph, Labeling, SeedLabels) {
        let edges = [
            // cluster A: 0..4 (complete-ish)
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (0, 3),
            // cluster B: 4..8
            (4, 5),
            (4, 6),
            (5, 6),
            (6, 7),
            (4, 7),
            // bridge
            (3, 4),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, None, Some(1), None, None],
            2,
        )
        .unwrap();
        (graph, labeling, seeds)
    }

    #[test]
    fn homophilous_clusters_are_recovered() {
        let (graph, labeling, seeds) = two_clusters();
        let result = multi_rank_walk(&graph, &seeds, &RandomWalkConfig::default()).unwrap();
        let acc = unlabeled_accuracy(&result.predictions, &labeling, &seeds);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(result.converged);
    }

    #[test]
    fn heterophilous_bipartite_graph_defeats_random_walks() {
        // On a bipartite (pure heterophily) graph the homophily assumption is wrong and
        // the walk mislabels roughly everything near the opposite seed.
        let edges = [
            (0, 4),
            (0, 5),
            (1, 4),
            (1, 6),
            (2, 5),
            (2, 7),
            (3, 6),
            (3, 7),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        let result = multi_rank_walk(&graph, &seeds, &RandomWalkConfig::default()).unwrap();
        let acc = unlabeled_accuracy(&result.predictions, &labeling, &seeds);
        assert!(acc < 0.75, "random walks should struggle, got {acc}");
    }

    #[test]
    fn invalid_damping_rejected() {
        let (graph, _, seeds) = two_clusters();
        let cfg = RandomWalkConfig {
            damping: 1.5,
            ..RandomWalkConfig::default()
        };
        assert!(multi_rank_walk(&graph, &seeds, &cfg).is_err());
    }

    #[test]
    fn size_mismatch_rejected() {
        let (graph, _, _) = two_clusters();
        let seeds = SeedLabels::new(vec![None; 3], 2).unwrap();
        assert!(multi_rank_walk(&graph, &seeds, &RandomWalkConfig::default()).is_err());
    }

    #[test]
    fn scores_decay_with_distance_from_seed() {
        let (graph, _, seeds) = two_clusters();
        let result = multi_rank_walk(&graph, &seeds, &RandomWalkConfig::default()).unwrap();
        // Node 1 (adjacent to the class-0 seed) should score higher for class 0 than
        // node 7 (far away in the other cluster).
        assert!(result.scores.get(1, 0) > result.scores.get(7, 0));
    }
}
