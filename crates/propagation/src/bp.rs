//! Full loopy Belief Propagation (BP).
//!
//! The reference algorithm LinBP linearizes (Section 2.2 of the paper). BP maintains a
//! `k`-dimensional message per directed edge and iterates
//!
//! ```text
//! m_ij ← H (x_i ⊙ ∏_{v ∈ N(i) \ j} m_vi)          (normalized per message)
//! f_i  ← Z_i⁻¹ x_i ⊙ ∏_{j ∈ N(i)} m_ji
//! ```
//!
//! It is included as a baseline: it expresses the same arbitrary compatibilities but has
//! no convergence guarantee and is considerably more expensive per iteration, which is
//! exactly why the linearized variant is preferable in practice.

use crate::linbp::label;
use fg_graph::{Graph, GraphError, Result, SeedLabels};
use fg_sparse::{map_row_chunks, partition_rows_by_nnz, DenseMatrix, Threads};

/// Configuration for loopy belief propagation.
#[derive(Debug, Clone)]
pub struct BpConfig {
    /// Maximum number of message-passing iterations.
    pub max_iterations: usize,
    /// Early-stopping tolerance on the maximum absolute message change.
    pub tolerance: f64,
    /// Strength of the prior for labeled nodes: the one-hot prior is mixed with the
    /// uniform distribution as `(1 - prior_strength)/k + prior_strength·onehot`.
    pub prior_strength: f64,
    /// Damping factor in `[0, 1)`: new messages are blended with the previous ones to
    /// improve convergence on loopy graphs (0 disables damping).
    pub damping: f64,
    /// Thread policy for the message-update loop. Every directed-edge message in an
    /// iteration depends only on the *previous* iteration's messages, so the update
    /// parallelizes over disjoint message ranges with bit-identical results.
    pub threads: Threads,
}

impl Default for BpConfig {
    fn default() -> Self {
        BpConfig {
            max_iterations: 50,
            tolerance: 1e-6,
            prior_strength: 0.9,
            damping: 0.1,
            threads: Threads::Serial,
        }
    }
}

/// Result of a loopy BP run.
#[derive(Debug, Clone)]
pub struct BpResult {
    /// Final (normalized) beliefs per node.
    pub beliefs: DenseMatrix,
    /// Predicted class per node.
    pub predictions: Vec<usize>,
    /// Iterations executed.
    pub iterations: usize,
    /// Whether messages converged before the iteration budget.
    pub converged: bool,
}

/// Run loopy belief propagation with the given compatibility matrix.
pub fn propagate_bp(
    graph: &Graph,
    seeds: &SeedLabels,
    h: &DenseMatrix,
    config: &BpConfig,
) -> Result<BpResult> {
    let n = graph.num_nodes();
    let k = seeds.k();
    if seeds.n() != n {
        return Err(GraphError::InvalidLabels(format!(
            "seed labels cover {} nodes but graph has {}",
            seeds.n(),
            n
        )));
    }
    if h.rows() != k || h.cols() != k {
        return Err(GraphError::InvalidCompatibility(format!(
            "H is {}x{} but k = {}",
            h.rows(),
            h.cols(),
            k
        )));
    }

    // Node priors.
    let uniform = 1.0 / k as f64;
    let mut priors = DenseMatrix::filled(n, k, uniform);
    for i in 0..n {
        if let Some(c) = seeds.get(i) {
            for j in 0..k {
                let v = (1.0 - config.prior_strength) * uniform
                    + if j == c { config.prior_strength } else { 0.0 };
                priors.set(i, j, v);
            }
            normalize_row(&mut priors, i);
        }
    }

    // Directed-edge message bookkeeping: for each node, the list of incident directed
    // edges (messages *into* the node) and the reverse-edge index for echo exclusion.
    let mut edge_from = Vec::new();
    let mut edge_to = Vec::new();
    for u in 0..n {
        for &v in graph.neighbors(u) {
            edge_from.push(u);
            edge_to.push(v);
        }
    }
    let num_messages = edge_from.len();
    // incoming[v] lists message indices with edge_to == v.
    let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); n];
    for e in 0..num_messages {
        incoming[edge_to[e]].push(e);
    }
    // reverse[e] is the index of the opposite-direction message.
    let mut reverse = vec![usize::MAX; num_messages];
    {
        use std::collections::HashMap;
        let mut index: HashMap<(usize, usize), usize> = HashMap::with_capacity(num_messages);
        for e in 0..num_messages {
            index.insert((edge_from[e], edge_to[e]), e);
        }
        for e in 0..num_messages {
            reverse[e] = *index
                .get(&(edge_to[e], edge_from[e]))
                .expect("graph adjacency is symmetric");
        }
    }

    // Messages start uniform.
    let mut messages = vec![uniform; num_messages * k];
    let mut next_messages = messages.clone();

    let mut iterations = 0;
    let mut converged = false;
    // Updating message e costs O(deg(source) · k + k²): the product over all
    // incoming messages of the source node dominates. Count-balanced message ranges
    // therefore serialize on one worker for power-law graphs (a hub's messages are
    // both numerous and individually expensive); instead, build a prefix sum of
    // per-message costs and split it evenly — the same nnz-balancing scheme
    // `partition_rows_by_nnz` applies to CSR rows. The partition only decides which
    // worker computes which disjoint message slot, so the result stays bit-identical
    // to the serial loop for any split.
    let mut cost_prefix = Vec::with_capacity(num_messages + 1);
    cost_prefix.push(0usize);
    for &from in &edge_from {
        let per_message = incoming[from].len() + 1;
        cost_prefix.push(cost_prefix.last().unwrap() + per_message);
    }
    let ranges = partition_rows_by_nnz(&cost_prefix, config.threads.count_for(num_messages));
    for _ in 0..config.max_iterations {
        // Every message update reads only the previous iteration's `messages` and
        // writes one disjoint k-wide slot of `next_messages`, so the loop distributes
        // over message ranges (one scoped thread each) with bit-identical results;
        // with a single range it runs inline exactly like the serial loop.
        let deltas = map_row_chunks(&mut next_messages, k, &ranges, |message_range, chunk| {
            let mut max_delta = 0.0f64;
            for (local, e) in message_range.enumerate() {
                let i = edge_from[e];
                // Product of priors and all incoming messages except the echo from
                // the recipient (the reverse edge).
                let mut prod: Vec<f64> = priors.row(i).to_vec();
                for &inc in &incoming[i] {
                    if inc == reverse[e] {
                        continue;
                    }
                    for (p, &m) in prod.iter_mut().zip(&messages[inc * k..(inc + 1) * k]) {
                        *p *= m;
                    }
                }
                // Modulate through H: out_c = sum_e H[c][e] * prod[e].
                let mut out = vec![0.0; k];
                for (c, o) in out.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for (e2, &p) in prod.iter().enumerate() {
                        acc += h.get(e2, c) * p;
                    }
                    *o = acc;
                }
                // Normalize and damp.
                let s: f64 = out.iter().sum();
                if s > 0.0 {
                    for o in out.iter_mut() {
                        *o /= s;
                    }
                } else {
                    for o in out.iter_mut() {
                        *o = uniform;
                    }
                }
                for (j, o) in out.iter().enumerate() {
                    let old = messages[e * k + j];
                    let blended = config.damping * old + (1.0 - config.damping) * o;
                    chunk[local * k + j] = blended;
                    max_delta = max_delta.max((blended - old).abs());
                }
            }
            max_delta
        });
        let max_delta = deltas.into_iter().fold(0.0f64, f64::max);
        std::mem::swap(&mut messages, &mut next_messages);
        iterations += 1;
        if max_delta <= config.tolerance {
            converged = true;
            break;
        }
    }

    // Final beliefs.
    let mut beliefs = DenseMatrix::zeros(n, k);
    for (i, incoming_edges) in incoming.iter().enumerate() {
        let mut belief: Vec<f64> = priors.row(i).to_vec();
        for &inc in incoming_edges {
            for (b, &m) in belief.iter_mut().zip(&messages[inc * k..(inc + 1) * k]) {
                *b *= m;
            }
        }
        let s: f64 = belief.iter().sum();
        for (j, b) in belief.iter().enumerate() {
            beliefs.set(i, j, if s > 0.0 { b / s } else { uniform });
        }
    }

    let predictions = label(&beliefs);
    Ok(BpResult {
        beliefs,
        predictions,
        iterations,
        converged,
    })
}

fn normalize_row(m: &mut DenseMatrix, i: usize) {
    let s: f64 = m.row(i).iter().sum();
    if s > 0.0 {
        for v in m.row_mut(i) {
            *v /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fg_graph::{CompatibilityMatrix, Labeling};

    fn bipartite() -> (Graph, Labeling, SeedLabels) {
        let edges = [
            (0, 4),
            (0, 5),
            (1, 4),
            (1, 6),
            (2, 5),
            (2, 7),
            (3, 6),
            (3, 7),
        ];
        let graph = Graph::from_edges(8, &edges).unwrap();
        let labeling = Labeling::new(vec![0, 0, 0, 0, 1, 1, 1, 1], 2).unwrap();
        let seeds = SeedLabels::new(
            vec![Some(0), None, None, None, Some(1), None, None, None],
            2,
        )
        .unwrap();
        (graph, labeling, seeds)
    }

    #[test]
    fn bp_recovers_heterophilous_classes() {
        let (graph, labeling, seeds) = bipartite();
        let h = CompatibilityMatrix::from_rows(&[vec![0.1, 0.9], vec![0.9, 0.1]])
            .unwrap()
            .into_dense();
        let result = propagate_bp(&graph, &seeds, &h, &BpConfig::default()).unwrap();
        let acc = crate::metrics::unlabeled_accuracy(&result.predictions, &labeling, &seeds);
        assert!(acc > 0.9, "accuracy {acc}");
        assert!(result.converged);
    }

    #[test]
    fn bp_beliefs_are_normalized() {
        let (graph, _, seeds) = bipartite();
        let h = CompatibilityMatrix::uniform(2).unwrap().into_dense();
        let result = propagate_bp(&graph, &seeds, &h, &BpConfig::default()).unwrap();
        for i in 0..graph.num_nodes() {
            let s: f64 = result.beliefs.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bp_agrees_with_linbp_on_small_graph() {
        // On a tree-like fragment with informative H both methods should produce the
        // same labels for the unlabeled nodes.
        let (graph, labeling, seeds) = bipartite();
        let h = CompatibilityMatrix::from_rows(&[vec![0.2, 0.8], vec![0.8, 0.2]])
            .unwrap()
            .into_dense();
        let bp = propagate_bp(&graph, &seeds, &h, &BpConfig::default()).unwrap();
        let lin =
            crate::linbp::propagate(&graph, &seeds, &h, &crate::linbp::LinBpConfig::default())
                .unwrap();
        let bp_acc = crate::metrics::unlabeled_accuracy(&bp.predictions, &labeling, &seeds);
        let lin_acc = crate::metrics::unlabeled_accuracy(&lin.predictions, &labeling, &seeds);
        assert!((bp_acc - lin_acc).abs() < 1e-9);
    }

    #[test]
    fn bp_validates_dimensions() {
        let (graph, _, _) = bipartite();
        let bad_seeds = SeedLabels::new(vec![None; 3], 2).unwrap();
        let h = CompatibilityMatrix::uniform(2).unwrap().into_dense();
        assert!(propagate_bp(&graph, &bad_seeds, &h, &BpConfig::default()).is_err());
        let seeds = SeedLabels::new(vec![None; 8], 2).unwrap();
        let bad_h = DenseMatrix::zeros(3, 3);
        assert!(propagate_bp(&graph, &seeds, &bad_h, &BpConfig::default()).is_err());
    }

    #[test]
    fn cost_balanced_partition_is_bit_identical_on_hub_graphs() {
        // A star with a pendant chain: the hub's messages each cost O(deg(hub)·k)
        // while the chain messages are near-free — the worst case for the old
        // count-balanced split. Results must stay bit-identical at any thread count.
        let mut edges: Vec<(usize, usize)> = (1..=20).map(|leaf| (0usize, leaf)).collect();
        edges.extend([(20, 21), (21, 22), (22, 23)]);
        let graph = Graph::from_edges(24, &edges).unwrap();
        let mut observed = vec![None; 24];
        observed[1] = Some(0);
        observed[23] = Some(1);
        let seeds = SeedLabels::new(observed, 2).unwrap();
        let h = CompatibilityMatrix::from_rows(&[vec![0.3, 0.7], vec![0.7, 0.3]])
            .unwrap()
            .into_dense();
        let serial = propagate_bp(&graph, &seeds, &h, &BpConfig::default()).unwrap();
        for threads in [Threads::Fixed(2), Threads::Fixed(4), Threads::Auto] {
            let parallel = propagate_bp(
                &graph,
                &seeds,
                &h,
                &BpConfig {
                    threads,
                    ..BpConfig::default()
                },
            )
            .unwrap();
            assert_eq!(
                serial.beliefs.data(),
                parallel.beliefs.data(),
                "{threads:?}"
            );
            assert_eq!(serial.predictions, parallel.predictions, "{threads:?}");
            assert_eq!(serial.iterations, parallel.iterations, "{threads:?}");
        }
    }

    #[test]
    fn bp_with_no_seeds_is_uniform() {
        let (graph, _, _) = bipartite();
        let seeds = SeedLabels::new(vec![None; 8], 2).unwrap();
        let h = CompatibilityMatrix::from_rows(&[vec![0.3, 0.7], vec![0.7, 0.3]])
            .unwrap()
            .into_dense();
        let result = propagate_bp(&graph, &seeds, &h, &BpConfig::default()).unwrap();
        for i in 0..8 {
            for j in 0..2 {
                assert!((result.beliefs.get(i, j) - 0.5).abs() < 1e-6);
            }
        }
    }
}
