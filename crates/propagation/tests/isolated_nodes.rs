//! Regression tests for zero-degree / unreachable nodes.
//!
//! Before the uniform-belief fallback, `harmonic_functions` and `multi_rank_walk`
//! left isolated and seed-unreachable unlabeled nodes with all-zero belief rows,
//! which `label()` silently tied to class 0 — inflating class-0 recall in every
//! sweep that sampled such a graph. These tests pin the fixed behavior across all
//! four propagation backends: finite beliefs everywhere, and an explicit uniform
//! row (not a silent zero row) wherever no seed mass can reach.

use fg_graph::{Graph, SeedLabels};
use fg_propagation::{
    all_propagators, harmonic_functions, multi_rank_walk, HarmonicConfig, RandomWalkConfig,
};
use fg_sparse::DenseMatrix;

/// Two labeled clusters (0..4 class 0, 4..8 class 1), one isolated node (8), and a
/// seedless two-node component (9–10).
fn graph_with_unreachable_nodes() -> (Graph, SeedLabels) {
    let edges = [
        (0, 1),
        (0, 2),
        (1, 2),
        (2, 3),
        (4, 5),
        (4, 6),
        (5, 6),
        (6, 7),
        (3, 4),
        (9, 10),
    ];
    let graph = Graph::from_edges(11, &edges).unwrap();
    let mut labels = vec![None; 11];
    labels[0] = Some(0);
    labels[5] = Some(1);
    let seeds = SeedLabels::new(labels, 2).unwrap();
    (graph, seeds)
}

#[test]
fn harmonic_gives_unreachable_nodes_uniform_beliefs() {
    let (graph, seeds) = graph_with_unreachable_nodes();
    let result = harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).unwrap();
    for &node in &[8usize, 9, 10] {
        assert_eq!(
            result.beliefs.row(node),
            &[0.5, 0.5],
            "node {node} should fall back to the uniform belief"
        );
    }
    // Reachable nodes keep informative (non-uniform) beliefs.
    assert!(result.beliefs.get(1, 0) > result.beliefs.get(1, 1));
    assert!(result.beliefs.get(7, 1) > result.beliefs.get(7, 0));
}

#[test]
fn random_walk_gives_unreachable_nodes_uniform_scores() {
    let (graph, seeds) = graph_with_unreachable_nodes();
    let result = multi_rank_walk(&graph, &seeds, &RandomWalkConfig::default()).unwrap();
    for &node in &[8usize, 9, 10] {
        assert_eq!(
            result.scores.row(node),
            &[0.5, 0.5],
            "node {node} should fall back to the uniform score"
        );
    }
    assert!(result.scores.get(1, 0) > result.scores.get(1, 1));
}

#[test]
fn no_backend_produces_nan_or_zero_rows_on_isolated_nodes() {
    let (graph, seeds) = graph_with_unreachable_nodes();
    let h = DenseMatrix::from_rows(&[vec![0.8, 0.2], vec![0.2, 0.8]]).unwrap();
    for backend in all_propagators() {
        let outcome = backend.propagate(&graph, &seeds, &h).unwrap();
        let name = backend.name();
        for &v in outcome.beliefs.data() {
            assert!(v.is_finite(), "{name} produced a non-finite belief");
        }
        assert_eq!(outcome.predictions.len(), graph.num_nodes());
        // The compatibility-free homophily baselines must expose "no information"
        // as an exactly uniform row rather than a silent all-zero row.
        if name == "Harmonic" || name == "RandomWalk" {
            for &node in &[8usize, 9, 10] {
                assert_eq!(outcome.beliefs.row(node), &[0.5, 0.5], "{name} node {node}");
            }
        }
    }
}

#[test]
fn isolated_labeled_node_keeps_its_label() {
    // A labeled isolated node must stay clamped to its observed label, not be
    // overwritten by the uniform fallback.
    let graph = Graph::from_edges(4, &[(0, 1), (1, 2)]).unwrap();
    let seeds = SeedLabels::new(vec![Some(0), None, None, Some(1)], 2).unwrap();
    let harmonic = harmonic_functions(&graph, &seeds, &HarmonicConfig::default()).unwrap();
    assert_eq!(harmonic.beliefs.row(3), &[0.0, 1.0]);
    assert_eq!(harmonic.predictions[3], 1);
    let rw = multi_rank_walk(&graph, &seeds, &RandomWalkConfig::default()).unwrap();
    // The class-1 walk teleports all of its mass to node 3.
    assert!(rw.scores.get(3, 1) > rw.scores.get(3, 0));
    assert_eq!(rw.predictions[3], 1);
}
