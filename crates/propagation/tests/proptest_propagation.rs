//! Property-based tests for label propagation.

use fg_graph::{generate, CompatibilityMatrix, GeneratorConfig, Graph, Labeling, SeedLabels};
use fg_propagation::{harmonic_functions, multi_rank_walk, propagate, HarmonicConfig, LinBpConfig, RandomWalkConfig};
use fg_sparse::DenseMatrix;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_seedset(labeling: &Labeling, f: f64, seed: u64) -> SeedLabels {
    let mut rng = StdRng::seed_from_u64(seed);
    labeling.stratified_sample(f, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn linbp_centering_invariance(seed in 0u64..200, h_skew in 2.0f64..8.0) {
        // Theorem 3.1: centered and uncentered propagation assign identical labels.
        let cfg = GeneratorConfig::balanced(120, 8.0, 3, h_skew).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, seed);
        let h = syn.planted_h.as_dense();
        let base = LinBpConfig { tolerance: None, max_iterations: 6, ..LinBpConfig::default() };
        let centered = propagate(&syn.graph, &seeds, h, &LinBpConfig { centered: true, ..base.clone() }).unwrap();
        let uncentered = propagate(&syn.graph, &seeds, h, &LinBpConfig { centered: false, ..base }).unwrap();
        prop_assert_eq!(centered.predictions, uncentered.predictions);
    }

    #[test]
    fn linbp_shifted_priors_give_same_labels(seed in 0u64..100, shift in 0.1f64..2.0) {
        // Theorem 3.1 general form: adding a constant to H leaves the labels unchanged.
        let cfg = GeneratorConfig::balanced(100, 8.0, 3, 4.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, seed);
        let h = syn.planted_h.as_dense().clone();
        let h_shifted = h.add_scalar(shift);
        let eps = fg_propagation::convergence_epsilon(&syn.graph, &h, 0.5).unwrap();
        let base = LinBpConfig {
            tolerance: None,
            max_iterations: 6,
            centered: false,
            explicit_epsilon: Some(eps),
            ..LinBpConfig::default()
        };
        let a = propagate(&syn.graph, &seeds, &h, &base).unwrap();
        let b = propagate(&syn.graph, &seeds, &h_shifted, &base).unwrap();
        prop_assert_eq!(a.predictions, b.predictions);
    }

    #[test]
    fn linbp_beliefs_bounded_under_convergent_scaling(seed in 0u64..100) {
        let cfg = GeneratorConfig::balanced(100, 6.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.1, seed);
        let result = propagate(
            &syn.graph,
            &seeds,
            syn.planted_h.as_dense(),
            &LinBpConfig { max_iterations: 100, tolerance: Some(1e-10), ..LinBpConfig::default() },
        ).unwrap();
        // Under the convergence condition the beliefs stay finite and modest.
        prop_assert!(result.beliefs.max_abs().is_finite());
        prop_assert!(result.beliefs.max_abs() < 100.0);
    }

    #[test]
    fn harmonic_beliefs_stay_in_unit_interval(seed in 0u64..100) {
        let cfg = GeneratorConfig::balanced(80, 6.0, 2, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cfg = cfg;
        cfg.h = CompatibilityMatrix::homophily(2, 6.0).unwrap();
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, seed);
        let result = harmonic_functions(&syn.graph, &seeds, &HarmonicConfig::default()).unwrap();
        for &v in result.beliefs.data() {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
    }

    #[test]
    fn random_walk_scores_are_non_negative(seed in 0u64..100) {
        let cfg = GeneratorConfig::balanced(80, 6.0, 3, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, seed);
        let result = multi_rank_walk(&syn.graph, &seeds, &RandomWalkConfig::default()).unwrap();
        for &v in result.scores.data() {
            prop_assert!(v >= -1e-12);
        }
    }

    #[test]
    fn gold_standard_propagation_beats_uniform_h(seed in 0u64..30) {
        // Propagating with the planted H must beat propagating with the uninformative
        // uniform matrix on a strongly structured graph.
        let cfg = GeneratorConfig::balanced_uniform(400, 16.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.1, seed);
        let gold = propagate(&syn.graph, &seeds, syn.planted_h.as_dense(), &LinBpConfig::default()).unwrap();
        let uniform = DenseMatrix::filled(3, 3, 1.0 / 3.0);
        let blind = propagate(&syn.graph, &seeds, &uniform, &LinBpConfig::default()).unwrap();
        let gold_acc = gold.accuracy(&syn.labeling, &seeds);
        let blind_acc = blind.accuracy(&syn.labeling, &seeds);
        prop_assert!(gold_acc + 1e-9 >= blind_acc, "gold {gold_acc} < uniform {blind_acc}");
    }
}

#[test]
fn graph_with_isolated_nodes_is_handled() {
    // Isolated unlabeled nodes keep zero beliefs and default to class 0; nothing panics.
    let graph = Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
    let labeling = Labeling::new(vec![0, 1, 0, 1, 0], 2).unwrap();
    let seeds = SeedLabels::new(vec![Some(0), Some(1), None, None, None], 2).unwrap();
    let h = CompatibilityMatrix::from_rows(&[vec![0.2, 0.8], vec![0.8, 0.2]])
        .unwrap()
        .into_dense();
    let result = propagate(&graph, &seeds, &h, &LinBpConfig::default()).unwrap();
    assert_eq!(result.predictions.len(), 5);
    let _ = result.accuracy(&labeling, &seeds);
}
