//! Property-style tests for label propagation, through both the free functions and
//! the `Propagator` trait surface.
//!
//! The build environment has no access to crates.io, so instead of `proptest` these
//! run each property over a deterministic sweep of seeded random inputs.

use fg_graph::{generate, CompatibilityMatrix, GeneratorConfig, Graph, Labeling, SeedLabels};
use fg_propagation::{
    propagate, Harmonic, LinBp, LinBpConfig, PropagationOutcome, Propagator, RandomWalk,
};
use fg_sparse::DenseMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_seedset(labeling: &Labeling, f: f64, seed: u64) -> SeedLabels {
    let mut rng = StdRng::seed_from_u64(seed);
    labeling.stratified_sample(f, &mut rng)
}

#[test]
fn linbp_centering_invariance() {
    // Theorem 3.1: centered and uncentered propagation assign identical labels.
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let h_skew = 2.0 + rng.gen::<f64>() * 6.0;
        let cfg = GeneratorConfig::balanced(120, 8.0, 3, h_skew).unwrap();
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, case);
        let h = syn.planted_h.as_dense();
        let base = LinBpConfig {
            tolerance: None,
            max_iterations: 6,
            ..LinBpConfig::default()
        };
        let centered = LinBp::new(LinBpConfig {
            centered: true,
            ..base.clone()
        })
        .propagate(&syn.graph, &seeds, h)
        .unwrap();
        let uncentered = LinBp::new(LinBpConfig {
            centered: false,
            ..base
        })
        .propagate(&syn.graph, &seeds, h)
        .unwrap();
        assert_eq!(centered.predictions, uncentered.predictions, "case {case}");
    }
}

#[test]
fn linbp_shifted_priors_give_same_labels() {
    // Theorem 3.1 general form: adding a constant to H leaves the labels unchanged.
    for case in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(case);
        let shift = 0.1 + rng.gen::<f64>() * 1.9;
        let cfg = GeneratorConfig::balanced(100, 8.0, 3, 4.0).unwrap();
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, case);
        let h = syn.planted_h.as_dense().clone();
        let h_shifted = h.add_scalar(shift);
        let eps = fg_propagation::convergence_epsilon(&syn.graph, &h, 0.5).unwrap();
        let base = LinBpConfig {
            tolerance: None,
            max_iterations: 6,
            centered: false,
            explicit_epsilon: Some(eps),
            ..LinBpConfig::default()
        };
        let a = propagate(&syn.graph, &seeds, &h, &base).unwrap();
        let b = propagate(&syn.graph, &seeds, &h_shifted, &base).unwrap();
        assert_eq!(a.predictions, b.predictions, "case {case} shift {shift}");
    }
}

#[test]
fn linbp_beliefs_bounded_under_convergent_scaling() {
    for case in 0..32u64 {
        let cfg = GeneratorConfig::balanced(100, 6.0, 3, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(case);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.1, case);
        let result = propagate(
            &syn.graph,
            &seeds,
            syn.planted_h.as_dense(),
            &LinBpConfig {
                max_iterations: 100,
                tolerance: Some(1e-10),
                ..LinBpConfig::default()
            },
        )
        .unwrap();
        // Under the convergence condition the beliefs stay finite and modest.
        assert!(result.beliefs.max_abs().is_finite(), "case {case}");
        assert!(result.beliefs.max_abs() < 100.0, "case {case}");
    }
}

#[test]
fn harmonic_beliefs_stay_in_unit_interval() {
    for case in 0..32u64 {
        let mut cfg = GeneratorConfig::balanced(80, 6.0, 2, 1.0).unwrap();
        cfg.h = CompatibilityMatrix::homophily(2, 6.0).unwrap();
        let mut rng = StdRng::seed_from_u64(case);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, case);
        let placeholder = DenseMatrix::filled(2, 2, 0.5);
        let result: PropagationOutcome = Harmonic::default()
            .propagate(&syn.graph, &seeds, &placeholder)
            .unwrap();
        for &v in result.beliefs.data() {
            assert!((-1e-9..=1.0 + 1e-9).contains(&v), "case {case}");
        }
    }
}

#[test]
fn random_walk_scores_are_non_negative() {
    for case in 0..32u64 {
        let cfg = GeneratorConfig::balanced(80, 6.0, 3, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(case);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.2, case);
        let placeholder = DenseMatrix::filled(3, 3, 1.0 / 3.0);
        let result = RandomWalk::default()
            .propagate(&syn.graph, &seeds, &placeholder)
            .unwrap();
        for &v in result.beliefs.data() {
            assert!(v >= -1e-12, "case {case}");
        }
    }
}

#[test]
fn gold_standard_propagation_beats_uniform_h() {
    // Propagating with the planted H must beat propagating with the uninformative
    // uniform matrix on a strongly structured graph.
    for case in 0..12u64 {
        let cfg = GeneratorConfig::balanced_uniform(400, 16.0, 3, 8.0).unwrap();
        let mut rng = StdRng::seed_from_u64(case);
        let syn = generate(&cfg, &mut rng).unwrap();
        let seeds = random_seedset(&syn.labeling, 0.1, case);
        let gold = propagate(
            &syn.graph,
            &seeds,
            syn.planted_h.as_dense(),
            &LinBpConfig::default(),
        )
        .unwrap();
        let uniform = DenseMatrix::filled(3, 3, 1.0 / 3.0);
        let blind = propagate(&syn.graph, &seeds, &uniform, &LinBpConfig::default()).unwrap();
        let gold_acc = gold.accuracy(&syn.labeling, &seeds);
        let blind_acc = blind.accuracy(&syn.labeling, &seeds);
        assert!(
            gold_acc + 1e-9 >= blind_acc,
            "case {case}: gold {gold_acc} < uniform {blind_acc}"
        );
    }
}

#[test]
fn graph_with_isolated_nodes_is_handled() {
    // Isolated unlabeled nodes keep zero beliefs and default to class 0; nothing panics.
    let graph = Graph::from_edges(5, &[(0, 1), (1, 2)]).unwrap();
    let labeling = Labeling::new(vec![0, 1, 0, 1, 0], 2).unwrap();
    let seeds = SeedLabels::new(vec![Some(0), Some(1), None, None, None], 2).unwrap();
    let h = CompatibilityMatrix::from_rows(&[vec![0.2, 0.8], vec![0.8, 0.2]])
        .unwrap()
        .into_dense();
    let result = propagate(&graph, &seeds, &h, &LinBpConfig::default()).unwrap();
    assert_eq!(result.predictions.len(), 5);
    let _ = result.accuracy(&labeling, &seeds);
}
