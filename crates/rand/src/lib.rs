//! Vendored stand-in for the small slice of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real `rand`
//! crate the workspace ships this dependency-free shim with the same import paths:
//!
//! * [`rngs::StdRng`] — a seedable, reproducible generator (xoshiro256** seeded via
//!   SplitMix64; *not* the same stream as upstream `StdRng`, but every use in this
//!   workspace only relies on determinism per seed, not on a specific stream).
//! * [`SeedableRng::seed_from_u64`] — the only seeding entry point used here.
//! * [`Rng::gen`] for `f64` / `bool` / integer samples.
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates shuffling.
//!
//! Keeping the `rand` package name and module layout means call sites look and read
//! like ordinary `rand` usage. The shim is *not* a perfect drop-in for the real
//! crate, though: [`Rng::gen_index`] is shim-only (real `rand` spells it
//! `gen_range(0..n)`), and several test suites use it. Migrating the workspace to
//! crates.io `rand` would mean swapping the path dependency and replacing
//! `gen_index(n)` with `gen_range(0..n)` at those call sites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s. Mirror of `rand_core::RngCore`, reduced to what the
/// workspace needs.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produce the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the shim's equivalent of the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the uniform ("standard") distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample a uniform index in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses widening multiplication (Lemire) so small bounds carry no modulo bias
    /// worth speaking of for simulation purposes.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "gen_index bound must be positive");
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as usize
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, reduced to the `seed_from_u64` constructor.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256** with its four
    /// words of state initialized by SplitMix64, as the xoshiro authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices (the only `SliceRandom` method this workspace uses).
    pub trait SliceRandom {
        /// Shuffle the slice in place with the Fisher–Yates algorithm.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    // `RngCore` is implemented for `&mut R`, matching the real crate.
    fn takes_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.gen::<f64>()
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = takes_rng(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }

    #[test]
    fn f64_samples_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn bool_samples_are_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!(
            (4_500..5_500).contains(&trues),
            "{trues} trues out of 10000"
        );
    }

    #[test]
    fn gen_index_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_index(7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity permutation (astronomically unlikely)"
        );
    }
}
