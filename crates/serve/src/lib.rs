//! # fg-serve — the online serving subsystem
//!
//! A long-lived session engine that turns the batch reproduction into a service:
//! load a graph once, stream seed mutations, and answer estimation / classification
//! queries whose summaries are maintained **incrementally** by
//! [`fg_core::incremental::DeltaSummary`] — after warm-up, a seed change costs work
//! proportional to the mutated node's neighborhood and subsequent requests perform
//! zero full summarizations, with results bit-identical to a cold batch run.
//!
//! The protocol is dependency-free JSON-lines (see [`session`] for the command
//! reference), served over stdin/stdout ([`serve_lines`]) and TCP ([`TcpServer`]);
//! [`send_requests`] is the matching one-shot client. The `fg serve` and
//! `fg client` CLI commands are thin wrappers over these entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod server;
pub mod session;

pub use json::Json;
pub use server::{send_requests, serve_lines, TcpServer};
pub use session::{predictions_to_file_format, Flow, Session};
