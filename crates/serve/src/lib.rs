//! # fg-serve — the online serving subsystem
//!
//! A long-lived session engine that turns the batch reproduction into a service:
//! load graphs once (under any number of names), stream seed mutations, and answer
//! estimation / classification queries whose summaries are maintained
//! **incrementally** by [`fg_core::incremental::DeltaSummary`] — after warm-up, a
//! seed change costs work proportional to the mutated node's neighborhood and
//! subsequent requests perform zero full summarizations, with results bit-identical
//! to a cold batch run.
//!
//! Each named dataset lives behind its own reader/writer lock, so warm reads from
//! concurrent clients overlap while mutations stay exclusive; a per-dataset LRU of
//! engine states keyed by seed fingerprint keeps recent seed configurations warm
//! (see [`session`]). When a persistent summary store is attached, estimates for
//! the loaded seed set are served straight from persisted `H` entries.
//!
//! The protocol is dependency-free JSON-lines (see [`session`] for the command
//! reference), served over stdin/stdout ([`serve_lines`]) and TCP ([`TcpServer`]),
//! both bounded by [`ServeLimits`] (connection cap, request-line cap, per-connection
//! request budget); [`send_requests`] is the matching one-shot client. The
//! `fg serve` and `fg client` CLI commands are thin wrappers over these entry
//! points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod server;
pub mod session;

pub use json::Json;
pub use server::{
    scrape_metrics, send_requests, serve_lines, serve_lines_with, MetricsServer, ServeLimits,
    TcpServer,
};
pub use session::{predictions_to_file_format, Flow, Session, DEFAULT_DATASET};
