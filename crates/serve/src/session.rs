//! The long-lived serving [`Session`]: named datasets + seed state + incremental
//! summary engines + shared caches behind a JSON-lines command protocol.
//!
//! One session is shared by every connection of an `fg serve` process (that is the
//! point: the expensive state — graphs, [`DeltaSummary`] engines, the summary cache —
//! is paid once and amortized across requests). A session manages **multiple named
//! datasets** concurrently: each dataset lives behind its own reader/writer lock, so
//! warm `estimate`/`classify`/`stats` requests on published state proceed in
//! parallel (shared read locks), while `load`/`unload`/`seed` and cold
//! engine-building requests take the dataset's exclusive write lock. All
//! floating-point work runs through the bit-identical kernels and every engine is
//! published before a read path can see it, so each response is a deterministic
//! function of the per-dataset request history alone — clients driving disjoint
//! datasets get byte-identical response streams under any interleaving. Timings
//! never appear on this port at all: all wall-clock data (per-command latency
//! histograms, lock-wait histograms) lives in the session's
//! [`MetricsRegistry`], scraped over the separate metrics listener
//! ([`MetricsServer`](crate::MetricsServer)).
//!
//! Per dataset, a small LRU of engine states keyed by **seed-set fingerprint**
//! keeps recently-used seed configurations warm: a `seed` mutation forks the live
//! engines ([`DeltaSummary::fork`]) and folds the batch into the forks, so the
//! pre-mutation state stays resident and reverting a mutation is a pure cache hit
//! (`"engine_reused":true`, zero delta work). Seed fingerprints are maintained in
//! O(1) per mutation by the rolling scheme in [`SeedLabels`]; `stats` exposes the
//! per-dataset `seed_scratch_derivations` counter that proves the serving path
//! never falls back to an O(n) re-derivation.
//!
//! When a persistent [`SummaryStore`] is attached, estimates for the *loaded* seed
//! set are additionally served straight from persisted `H` entries
//! (`optimize_store_hits`), skipping both summarization and optimization.
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out. Requests name a command in `cmd`
//! and may carry an `id` of any JSON type, echoed verbatim in the response, plus an
//! optional `dataset` name (defaulting to `"default"`) selecting which dataset the
//! command addresses. Responses are `{"ok":true,"id":...,"result":{...}}` or
//! `{"ok":false,"id":...,"line":N,"error":"..."}` — malformed requests (bad JSON,
//! unknown commands, invalid parameters) produce an error response with the
//! connection's line number and never terminate the session.
//!
//! | command    | parameters                                                        |
//! |------------|-------------------------------------------------------------------|
//! | `ping`     | —                                                                 |
//! | `load`     | `edges`, `labels`, `nodes`, `classes`, `dataset` (optional name)  |
//! | `unload`   | `dataset` (optional name)                                         |
//! | `seed`     | `add` `[[node,label],..]`, `remove` `[node,..]`, `relabel` `[[node,label],..]` |
//! | `estimate` | `method`, `lmax`, `lambda`, `restarts`, `splits`, `variant`       |
//! | `classify` | estimate's parameters + `propagator`, `iterations`, `tolerance`, `damping`, `nodes` (subset), `abstain` |
//! | `stats`    | —                                                                 |
//! | `shutdown` | — (closes this connection; the process keeps serving others)      |
//!
//! `seed` mutations are folded into the maintained summaries by the
//! [`DeltaSummary`] engines — after the first `estimate`/`classify` warm-up, a seed
//! change costs work proportional to the mutated node's neighborhood and subsequent
//! requests report `summary_computations: 0`, bit-identical to a cold batch run on
//! the same seed set.

use crate::json::Json;
use fg_core::incremental::{validate_mutations, DeltaSummary, SeedMutation};
use fg_core::prelude::*;
use fg_core::{estimator_by_name_with, EstimatorOptions, SummaryStore};
use fg_graph::Fingerprint;
use fg_obs::{default_latency_buckets, MetricsRegistry};
use fg_propagation::registry as propagation_registry;
use fg_propagation::{Propagator, PropagatorOptions};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Whether the serving loop should keep reading after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep the connection open.
    Continue,
    /// Close this connection after writing the response.
    Close,
}

/// The dataset name used when a request carries no `dataset` field.
pub const DEFAULT_DATASET: &str = "default";

/// How many seed-set engine states each dataset keeps warm by default.
const DEFAULT_ENGINE_STATES: usize = 4;

/// The engines maintained for one seed-set fingerprint: one slot per counting mode
/// (index 0 = plain paths, 1 = non-backtracking), created lazily by the first
/// estimator that needs the mode. An entry in the per-dataset LRU.
struct EngineState {
    seed_fp: Fingerprint,
    engines: [Option<DeltaSummary>; 2],
    /// Recency stamp from the session clock; atomic so warm reads can touch it
    /// under a shared read lock.
    last_used: AtomicU64,
    /// Row units it took to materialize this state: delta rows replayed at fork
    /// time, plus full-summarization rows for engines built from scratch. The
    /// LRU treats this as the state's rebuild cost — cheap-to-rebuild states
    /// evict first, recency only breaks ties — so an expensive fully summarized
    /// state is not sacrificed to keep a one-mutation fork warm.
    rebuild_rows: usize,
}

impl EngineState {
    fn full_summarizations(&self) -> usize {
        self.engines
            .iter()
            .flatten()
            .map(|e| e.stats().full_summarizations)
            .sum()
    }
}

/// One loaded dataset plus its incremental machinery. Lives behind a `RwLock` in
/// the session's dataset map: warm reads share it, mutations own it.
struct Dataset {
    /// The map key this dataset lives under (the `dataset` label on its metrics).
    name: String,
    graph: Arc<Graph>,
    seeds: SeedLabels,
    classes: usize,
    label: String,
    /// LRU of engine states keyed by seed fingerprint. Every resident engine's
    /// counts are already published to the shared cache (and persisted to the
    /// store, when attached) — the read path never publishes.
    states: Vec<EngineState>,
    /// Fingerprint of the seed set as loaded from disk. Store entries for this
    /// fingerprint are shared with batch runs and future sessions on the same
    /// files, so pruning must never touch it — only the session's own intermediate
    /// (mutated) fingerprints are transient.
    initial_seed_fp: Fingerprint,
    /// The one intermediate (non-initial) seed fingerprint whose summaries are
    /// currently persisted, if any. Each new persist prunes the previous
    /// intermediate's files, so the store holds at most one transient state per
    /// dataset alongside the shared initial one.
    persisted_intermediate: Option<Fingerprint>,
    /// How many engine states the LRU has evicted over this dataset's lifetime.
    /// Exposed via `stats` so oscillating multi-tenant workloads — seed sets
    /// cycling faster than the LRU capacity, re-summarizing on every swing — are
    /// diagnosable from the outside.
    engine_evictions: usize,
}

impl Dataset {
    fn graph_fingerprint(&self) -> Fingerprint {
        self.graph.fingerprint()
    }

    fn state_index(&self, seed_fp: Fingerprint) -> Option<usize> {
        self.states.iter().position(|s| s.seed_fp == seed_fp)
    }

    fn full_summarizations(&self) -> usize {
        self.states
            .iter()
            .map(EngineState::full_summarizations)
            .sum()
    }
}

/// Aggregate per-command counters for `stats`. Deliberately holds **no timing**:
/// `stats` responses travel over the byte-deterministic protocol port, so they
/// report only counters that are a pure function of the request history. All
/// wall-clock aggregation (latency histograms, percentiles) lives in the
/// session's [`MetricsRegistry`], scraped over the separate metrics listener.
#[derive(Debug, Default, Clone)]
struct CommandStat {
    count: usize,
    errors: usize,
}

/// The result of one estimation, with the per-request work counters.
struct EstimateOutcome {
    h: DenseMatrix,
    estimator: String,
    /// Full summarizations this request caused (engine builds + cache misses).
    computations: usize,
    /// Summaries this request pulled from the persistent store.
    store_hits: usize,
    /// Whether this request was answered straight from a persisted `H` estimate.
    h_store_hits: usize,
}

/// A long-lived serving session (see the [module docs](self) for the protocol).
/// Shared across connections behind an `Arc`. Named datasets are independent:
/// requests on different datasets never contend beyond a brief map lookup, and
/// warm reads on the *same* dataset run concurrently under its shared read lock.
pub struct Session {
    threads: Threads,
    cache: Arc<SummaryCache>,
    store: Option<Arc<SummaryStore>>,
    /// How many seed-set engine states each dataset keeps warm (LRU capacity).
    engine_capacity: usize,
    datasets: RwLock<BTreeMap<String, Arc<RwLock<Dataset>>>>,
    requests: AtomicUsize,
    /// Full summarizations performed by engines that were since dropped (dataset
    /// reloads, lmax upgrades, LRU evictions) — keeps the session total monotone.
    retired_full_summarizations: AtomicUsize,
    /// Estimates answered straight from persisted `H` entries.
    h_store_hits: AtomicUsize,
    /// Monotone recency clock for the per-dataset engine LRUs.
    clock: AtomicU64,
    commands: Mutex<BTreeMap<String, CommandStat>>,
    /// The session's metrics registry: per-command latency histograms, lock-wait
    /// histograms, and per-dataset cache/engine counters. Scraped over the
    /// metrics listener (`fg serve --metrics-port`); never consulted by the
    /// protocol port, so responses stay byte-deterministic.
    metrics: Arc<MetricsRegistry>,
    /// Requests slower than this many milliseconds log one stderr line
    /// (`u64::MAX` disables the slow-request log).
    slow_request_millis: AtomicU64,
    /// Test hook: invoked on every warm read while the dataset's shared read lock
    /// is held, so concurrency tests can prove warm reads overlap.
    warm_read_probe: Option<Box<dyn Fn() + Send + Sync>>,
}

impl Session {
    /// Create a session with the given thread policy and optional persistent
    /// summary store.
    pub fn new(threads: Threads, store: Option<Arc<SummaryStore>>) -> Session {
        Session {
            threads,
            cache: SummaryCache::shared(),
            store,
            engine_capacity: DEFAULT_ENGINE_STATES,
            datasets: RwLock::new(BTreeMap::new()),
            requests: AtomicUsize::new(0),
            retired_full_summarizations: AtomicUsize::new(0),
            h_store_hits: AtomicUsize::new(0),
            clock: AtomicU64::new(0),
            commands: Mutex::new(BTreeMap::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            slow_request_millis: AtomicU64::new(u64::MAX),
            warm_read_probe: None,
        }
    }

    /// The session's metrics registry (shared with the metrics listener).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.metrics)
    }

    /// Log one stderr line for every request slower than `millis` milliseconds.
    /// A threshold of 0 logs every request (the CI smoke mode).
    pub fn with_slow_request_millis(self, millis: u64) -> Session {
        self.slow_request_millis.store(millis, Ordering::Relaxed);
        self
    }

    /// Set how many seed-set engine states each dataset keeps warm (clamped to at
    /// least one: the current seed set's engines are never evicted).
    pub fn with_engine_states(mut self, capacity: usize) -> Session {
        self.engine_capacity = capacity.max(1);
        self
    }

    /// Install a hook invoked on every warm read while the dataset's shared read
    /// lock is held. Concurrency tests use a barrier here to prove that warm reads
    /// from multiple connections genuinely overlap.
    #[doc(hidden)]
    pub fn set_warm_read_probe(&mut self, probe: Box<dyn Fn() + Send + Sync>) {
        self.warm_read_probe = Some(probe);
    }

    fn probe(&self) {
        if let Some(probe) = &self.warm_read_probe {
            probe();
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Record how long a lock acquisition waited, labeled by lock and operation.
    /// Lock contention is the one latency source the per-command histograms
    /// cannot attribute (a warm read stalled behind a writer looks identical to
    /// a slow kernel), so it gets its own histogram family.
    fn observe_lock_wait(&self, lock: &'static str, op: &'static str, start: Instant) {
        self.metrics
            .histogram(
                "fg_lock_wait_seconds",
                "Time spent waiting to acquire session RwLocks, by lock and operation.",
                &[("lock", lock), ("op", op)],
                default_latency_buckets(),
            )
            .observe_duration(start.elapsed());
    }

    /// Timed shared lock on the dataset map.
    fn map_read(&self) -> RwLockReadGuard<'_, BTreeMap<String, Arc<RwLock<Dataset>>>> {
        let start = Instant::now();
        let guard = self.datasets.read().expect("dataset map poisoned");
        self.observe_lock_wait("dataset_map", "read", start);
        guard
    }

    /// Timed exclusive lock on the dataset map.
    fn map_write(&self) -> RwLockWriteGuard<'_, BTreeMap<String, Arc<RwLock<Dataset>>>> {
        let start = Instant::now();
        let guard = self.datasets.write().expect("dataset map poisoned");
        self.observe_lock_wait("dataset_map", "write", start);
        guard
    }

    /// Timed shared lock on one dataset.
    fn dataset_read<'l>(&self, handle: &'l RwLock<Dataset>) -> RwLockReadGuard<'l, Dataset> {
        let start = Instant::now();
        let guard = handle.read().expect("dataset poisoned");
        self.observe_lock_wait("dataset", "read", start);
        guard
    }

    /// Timed exclusive lock on one dataset.
    fn dataset_write<'l>(&self, handle: &'l RwLock<Dataset>) -> RwLockWriteGuard<'l, Dataset> {
        let start = Instant::now();
        let guard = handle.write().expect("dataset poisoned");
        self.observe_lock_wait("dataset", "write", start);
        guard
    }

    /// Fold one estimation outcome into the per-dataset counter families.
    fn record_estimate_metrics(&self, dataset: &str, outcome: &EstimateOutcome) {
        let labels = &[("dataset", dataset)];
        self.metrics
            .counter(
                "fg_summary_computations_total",
                "Full O(m*k*lmax) summarizations performed, by dataset.",
                labels,
            )
            .add(outcome.computations as u64);
        self.metrics
            .counter(
                "fg_store_hits_total",
                "Summaries served from the persistent store, by dataset.",
                labels,
            )
            .add(outcome.store_hits as u64);
        self.metrics
            .counter(
                "fg_optimize_store_hits_total",
                "Estimates served straight from persisted H entries, by dataset.",
                labels,
            )
            .add(outcome.h_store_hits as u64);
    }

    /// Handle one raw request line, producing the response line and the connection
    /// disposition. `line_no` is the 1-based line number within the connection,
    /// echoed in error responses so clients can pinpoint the offending request.
    pub fn handle_line(&self, line: &str, line_no: usize) -> (String, Flow) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return (
                error_response(&Json::Null, line_no, "empty request line").to_string(),
                Flow::Continue,
            );
        }
        let request = match Json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                return (
                    error_response(&Json::Null, line_no, &format!("invalid JSON: {e}")).to_string(),
                    Flow::Continue,
                );
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let cmd = match request.get("cmd").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => {
                return (
                    error_response(&id, line_no, "request object needs a string 'cmd' field")
                        .to_string(),
                    Flow::Continue,
                );
            }
        };

        let start = Instant::now();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (outcome, flow) = match cmd.as_str() {
            "ping" => (Ok(Json::str("pong")), Flow::Continue),
            "load" => (self.cmd_load(&request), Flow::Continue),
            "unload" => (self.cmd_unload(&request), Flow::Continue),
            "seed" => (self.cmd_seed(&request), Flow::Continue),
            "estimate" => (self.cmd_estimate(&request), Flow::Continue),
            "classify" => (self.cmd_classify(&request), Flow::Continue),
            "stats" => (Ok(self.cmd_stats()), Flow::Continue),
            "shutdown" => (Ok(Json::str("closing connection")), Flow::Close),
            other => (
                Err(format!(
                    "unknown command '{other}' (expected ping, load, unload, seed, \
                     estimate, classify, stats, or shutdown)"
                )),
                Flow::Continue,
            ),
        };
        let elapsed = start.elapsed();
        {
            let mut commands = self.commands.lock().expect("command stats poisoned");
            let stat = commands.entry(cmd.clone()).or_default();
            stat.count += 1;
            if outcome.is_err() {
                stat.errors += 1;
            }
        }
        let labels = &[("cmd", cmd.as_str())];
        self.metrics
            .counter("fg_requests_total", "Requests handled, by command.", labels)
            .inc();
        if outcome.is_err() {
            self.metrics
                .counter(
                    "fg_request_errors_total",
                    "Requests answered with an error response, by command.",
                    labels,
                )
                .inc();
        }
        self.metrics
            .histogram(
                "fg_request_seconds",
                "Request handling latency, by command.",
                labels,
                default_latency_buckets(),
            )
            .observe_duration(elapsed);
        if elapsed.as_millis() as u64 >= self.slow_request_millis.load(Ordering::Relaxed) {
            eprintln!(
                "fg serve: slow request cmd={cmd} elapsed_ms={} line_bytes={}",
                elapsed.as_millis(),
                line.len()
            );
        }
        let response = match outcome {
            Ok(result) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("id", id),
                ("result", result),
            ]),
            Err(message) => error_response(&id, line_no, &message),
        };
        (response.to_string(), flow)
    }

    /// Look up a loaded dataset's handle by name (brief shared lock on the map).
    fn dataset_handle(&self, name: &str) -> Result<Arc<RwLock<Dataset>>, String> {
        self.map_read()
            .get(name)
            .cloned()
            .ok_or_else(|| missing_dataset(name))
    }

    /// `load`: read an edge list + seed label file into the named dataset,
    /// replacing any previous dataset of that name (whose cache entries and
    /// engines are retired).
    fn cmd_load(&self, request: &Json) -> Result<Json, String> {
        let name = dataset_name(request)?;
        let edges = required_str(request, "edges")?;
        let labels = required_str(request, "labels")?;
        let nodes = required_usize(request, "nodes")?;
        let classes = required_usize(request, "classes")?;
        let graph =
            fg_datasets::read_edge_list(Path::new(&edges), nodes).map_err(|e| e.to_string())?;
        let seeds = fg_datasets::read_labels(Path::new(&labels), nodes, classes)
            .map_err(|e| e.to_string())?;

        let initial_seed_fp = seeds.fingerprint();
        let dataset = Dataset {
            name: name.clone(),
            graph: Arc::new(graph),
            seeds,
            classes,
            label: edges.clone(),
            states: Vec::new(),
            initial_seed_fp,
            persisted_intermediate: None,
            engine_evictions: 0,
        };
        self.metrics
            .counter(
                "fg_dataset_loads_total",
                "Datasets loaded (including reloads), by dataset.",
                &[("dataset", &name)],
            )
            .inc();
        let result = Json::obj(vec![
            ("dataset", Json::str(name.clone())),
            ("nodes", Json::num(dataset.graph.num_nodes())),
            ("edges", Json::num(dataset.graph.num_edges())),
            ("classes", Json::num(classes)),
            ("labeled", Json::num(dataset.seeds.num_labeled())),
            (
                "graph_fingerprint",
                Json::str(dataset.graph_fingerprint().to_hex()),
            ),
            (
                "seed_fingerprint",
                Json::str(dataset.seeds.fingerprint().to_hex()),
            ),
        ]);
        let replaced = self
            .map_write()
            .insert(name, Arc::new(RwLock::new(dataset)));
        // Retire the replaced dataset outside the map lock: evict its cache
        // entries so the session cache does not grow across reloads, keep its
        // engines' work counters in the totals, and prune its transient store
        // files. Waits for in-flight readers of the old dataset to drain.
        if let Some(old) = replaced {
            let mut old = self.dataset_write(&old);
            self.retire_dataset(&mut old);
        }
        Ok(result)
    }

    /// `unload`: drop the named dataset, retiring its engines and cache entries.
    fn cmd_unload(&self, request: &Json) -> Result<Json, String> {
        let name = dataset_name(request)?;
        let removed = self
            .map_write()
            .remove(&name)
            .ok_or_else(|| missing_dataset(&name))?;
        let mut dataset = self.dataset_write(&removed);
        self.retire_dataset(&mut dataset);
        Ok(Json::obj(vec![
            ("dataset", Json::str(name)),
            ("unloaded", Json::Bool(true)),
        ]))
    }

    /// Evict a dataset's cache entries, fold its engines' work into the retired
    /// total, and prune its transient (intermediate-fingerprint) store files.
    fn retire_dataset(&self, dataset: &mut Dataset) {
        let graph_fp = dataset.graph_fingerprint();
        for state in &dataset.states {
            self.cache.remove(graph_fp, state.seed_fp);
        }
        self.retired_full_summarizations
            .fetch_add(dataset.full_summarizations(), Ordering::Relaxed);
        dataset.states.clear();
        if let (Some(store), Some(fp)) = (&self.store, dataset.persisted_intermediate.take()) {
            for non_backtracking in [false, true] {
                if let Err(e) = store.remove(graph_fp, fp, non_backtracking) {
                    eprintln!("warning: could not prune superseded summary: {e}");
                }
            }
        }
    }

    /// Record that summaries for `fp` were just persisted: prune the previously
    /// persisted intermediate state's files (the loaded seed set's entries are
    /// shared with batch runs and always survive) and remember `fp` if it is
    /// itself intermediate.
    fn note_persisted(&self, dataset: &mut Dataset, fp: Fingerprint) {
        if let Some(store) = &self.store {
            if let Some(old) = dataset.persisted_intermediate {
                if old != fp {
                    for non_backtracking in [false, true] {
                        if let Err(e) =
                            store.remove(dataset.graph_fingerprint(), old, non_backtracking)
                        {
                            eprintln!("warning: could not prune superseded summary: {e}");
                        }
                    }
                }
            }
        }
        dataset.persisted_intermediate = (fp != dataset.initial_seed_fp).then_some(fp);
    }

    /// Shrink a dataset's engine LRU to capacity, never evicting `keep` (the
    /// current seed set's state). The victim is the state that is cheapest to
    /// rebuild (fewest row units replayed to materialize it), with recency
    /// breaking ties — pure recency would happily drop a fully summarized state
    /// to keep a one-mutation fork warm. Evicted engines' counters are retired
    /// and their cache entries dropped; persisted files are governed by
    /// [`note_persisted`](Self::note_persisted), not eviction.
    fn evict_excess(&self, dataset: &mut Dataset, keep: Fingerprint) {
        while dataset.states.len() > self.engine_capacity {
            let victim = dataset
                .states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.seed_fp != keep)
                .min_by_key(|(_, s)| (s.rebuild_rows, s.last_used.load(Ordering::Relaxed)))
                .map(|(i, _)| i);
            let Some(index) = victim else { break };
            let state = dataset.states.remove(index);
            dataset.engine_evictions += 1;
            self.metrics
                .counter(
                    "fg_engine_evictions_total",
                    "Engine states evicted from the per-dataset LRU, by dataset.",
                    &[("dataset", &dataset.name)],
                )
                .inc();
            self.retired_full_summarizations
                .fetch_add(state.full_summarizations(), Ordering::Relaxed);
            self.cache
                .remove(dataset.graph_fingerprint(), state.seed_fp);
        }
    }

    /// `seed`: apply a mutation batch to the named dataset under its exclusive
    /// write lock. The pre-mutation engines stay resident in the LRU (forks absorb
    /// the batch), so reverting a mutation later is a pure engine reuse.
    fn cmd_seed(&self, request: &Json) -> Result<Json, String> {
        let name = dataset_name(request)?;
        let mutations = parse_mutations(request)?;
        let handle = self.dataset_handle(&name)?;
        let mut dataset = self.dataset_write(&handle);
        validate_mutations(&dataset.seeds, &mutations).map_err(|e| e.to_string())?;

        let old_fp = dataset.seeds.fingerprint();
        // The post-mutation fingerprint decides between reusing a resident engine
        // state and forking; deriving it from a scratch clone is fine here — the
        // write path is exclusive, and the authoritative seed set below still
        // pays only O(1) rolling updates per mutation.
        let new_fp = {
            let mut trial = dataset.seeds.clone();
            apply_to_seeds(&mut trial, &mutations);
            trial.fingerprint()
        };

        let mut delta_applied = 0usize;
        let mut full_recomputes = 0usize;
        let mut rows_touched = 0usize;
        let engine_reused = dataset.state_index(new_fp).is_some();
        if engine_reused {
            self.metrics
                .counter(
                    "fg_engine_reuse_total",
                    "Seed mutations answered by a resident engine state, by dataset.",
                    &[("dataset", &name)],
                )
                .inc();
            let index = dataset.state_index(new_fp).expect("checked above");
            dataset.states[index]
                .last_used
                .store(self.tick(), Ordering::Relaxed);
        } else if let Some(index) = dataset.state_index(old_fp) {
            // Fork the live engines and fold the batch into the forks; the
            // pre-mutation state keeps its engines for a later revert.
            let mut forks = [None, None];
            for (slot, fork) in forks.iter_mut().enumerate() {
                if let Some(engine) = &dataset.states[index].engines[slot] {
                    let mut forked = engine.fork();
                    let outcome = forked.apply(&mutations).map_err(|e| e.to_string())?;
                    delta_applied += outcome.delta_applied;
                    full_recomputes += outcome.full_recomputes;
                    rows_touched += outcome.rows_touched;
                    *fork = Some(forked);
                }
            }
            if forks.iter().any(Option::is_some) {
                for engine in forks.iter().flatten() {
                    engine.publish_to(&self.cache);
                    if let Some(store) = &self.store {
                        if let Err(e) = engine.persist_to(store) {
                            eprintln!("warning: could not persist summary: {e}");
                        }
                    }
                }
                dataset.states.push(EngineState {
                    seed_fp: new_fp,
                    engines: forks,
                    last_used: AtomicU64::new(self.tick()),
                    rebuild_rows: rows_touched,
                });
                self.evict_excess(&mut dataset, new_fp);
                self.note_persisted(&mut dataset, new_fp);
            }
        }
        // The authoritative seed set mutates in place: each set_label folds the
        // change into the rolling fingerprint in O(1), which is what the
        // `seed_scratch_derivations` counter in `stats` certifies.
        apply_to_seeds(&mut dataset.seeds, &mutations);
        debug_assert_eq!(dataset.seeds.fingerprint(), new_fp);
        Ok(Json::obj(vec![
            ("mutations", Json::num(mutations.len())),
            ("labeled", Json::num(dataset.seeds.num_labeled())),
            (
                "seed_fingerprint",
                Json::str(dataset.seeds.fingerprint().to_hex()),
            ),
            ("engine_reused", Json::Bool(engine_reused)),
            ("delta_applied", Json::num(delta_applied)),
            ("full_recomputes", Json::num(full_recomputes)),
            ("rows_touched", Json::num(rows_touched)),
        ]))
    }

    /// Run an estimator through a cache-backed context on a dataset, counting this
    /// request's work via the key-scoped cache counters (deterministic under
    /// concurrency: distinct datasets never share a key's counters).
    fn estimate_with_ctx(
        &self,
        dataset: &Dataset,
        estimator: &dyn CompatibilityEstimator,
    ) -> Result<(DenseMatrix, usize, usize), String> {
        let graph_fp = dataset.graph_fingerprint();
        let seed_fp = dataset.seeds.fingerprint();
        let computations_before = self.cache.key_computations(graph_fp, seed_fp);
        let store_hits_before = self.cache.key_store_hits(graph_fp, seed_fp);
        let mut ctx =
            EstimationContext::with_cache(&dataset.graph, &dataset.seeds, Arc::clone(&self.cache))
                .threads(self.threads);
        if let Some(store) = &self.store {
            ctx = ctx.store(Arc::clone(store));
        }
        let h = estimator
            .estimate_with_context(&ctx)
            .map_err(|e| e.to_string())?;
        drop(ctx);
        let computations = self.cache.key_computations(graph_fp, seed_fp) - computations_before;
        let store_hits = self.cache.key_store_hits(graph_fp, seed_fp) - store_hits_before;
        Ok((h, computations, store_hits))
    }

    /// Attempt to answer an estimation without exclusive access: from a persisted
    /// `H` entry, from an estimator that needs no summaries, or from a resident
    /// published engine state. Returns `None` when the request needs the write
    /// path (engine build). Runs under the caller's shared read lock.
    fn warm_estimate(
        &self,
        dataset: &Dataset,
        estimator: &dyn CompatibilityEstimator,
    ) -> Result<Option<EstimateOutcome>, String> {
        let name = estimator.name();
        let seed_fp = dataset.seeds.fingerprint();
        if let Some(store) = &self.store {
            if estimator.content_addressable() {
                match store.load_h(dataset.graph_fingerprint(), seed_fp, &name) {
                    Ok(Some(h)) => {
                        self.h_store_hits.fetch_add(1, Ordering::Relaxed);
                        self.probe();
                        return Ok(Some(EstimateOutcome {
                            h,
                            estimator: name,
                            computations: 0,
                            store_hits: 0,
                            h_store_hits: 1,
                        }));
                    }
                    Ok(None) => {}
                    // A corrupt or foreign store entry is loud but non-fatal:
                    // re-estimate from the live state.
                    Err(e) => eprintln!("warning: {e}; re-estimating"),
                }
            }
        }
        match estimator.summary_requirements() {
            None => {
                self.probe();
                let (h, computations, store_hits) = self.estimate_with_ctx(dataset, estimator)?;
                Ok(Some(EstimateOutcome {
                    h,
                    estimator: name,
                    computations,
                    store_hits,
                    h_store_hits: 0,
                }))
            }
            Some(requirements) => {
                let slot = usize::from(requirements.non_backtracking);
                let warm = dataset.state_index(seed_fp).is_some_and(|index| {
                    let state = &dataset.states[index];
                    let ready = state.engines[slot]
                        .as_ref()
                        .is_some_and(|e| e.max_length() >= requirements.max_length);
                    if ready {
                        state.last_used.store(self.tick(), Ordering::Relaxed);
                    }
                    ready
                });
                if !warm {
                    return Ok(None);
                }
                self.probe();
                let (h, computations, store_hits) = self.estimate_with_ctx(dataset, estimator)?;
                Ok(Some(EstimateOutcome {
                    h,
                    estimator: name,
                    computations,
                    store_hits,
                    h_store_hits: 0,
                }))
            }
        }
    }

    /// Ensure an engine for the current seed set satisfies `requirements`,
    /// building (or rebuilding longer) via one full summarization when needed and
    /// publishing + persisting the fresh counts. Returns how many engines this
    /// call built. Requires the caller's exclusive write lock.
    fn ensure_engine(
        &self,
        dataset: &mut Dataset,
        requirements: &SummaryConfig,
    ) -> Result<usize, String> {
        let seed_fp = dataset.seeds.fingerprint();
        let slot = usize::from(requirements.non_backtracking);
        let index = match dataset.state_index(seed_fp) {
            Some(index) => index,
            None => {
                dataset.states.push(EngineState {
                    seed_fp,
                    engines: [None, None],
                    last_used: AtomicU64::new(self.tick()),
                    rebuild_rows: 0,
                });
                self.evict_excess(&mut *dataset, seed_fp);
                dataset.state_index(seed_fp).expect("just inserted")
            }
        };
        let satisfied = dataset.states[index].engines[slot]
            .as_ref()
            .is_some_and(|e| e.max_length() >= requirements.max_length);
        if satisfied {
            dataset.states[index]
                .last_used
                .store(self.tick(), Ordering::Relaxed);
            return Ok(0);
        }
        // Maintain at least the paper's ℓmax = 5 so later default requests reuse
        // the same engine instead of forcing a rebuild.
        let target = requirements.max_length.max(5);
        if let Some(old) = dataset.states[index].engines[slot].take() {
            self.retired_full_summarizations
                .fetch_add(old.stats().full_summarizations, Ordering::Relaxed);
        }
        let engine = DeltaSummary::new(
            Arc::clone(&dataset.graph),
            dataset.seeds.clone(),
            target,
            requirements.non_backtracking,
            self.threads,
        )
        .map_err(|e| e.to_string())?;
        engine.publish_to(&self.cache);
        if let Some(store) = &self.store {
            if let Err(e) = engine.persist_to(store) {
                eprintln!("warning: could not persist summary: {e}");
            }
        }
        // A from-scratch engine raises the state's rebuild cost by the rows one
        // full summarization touches, making it a last-resort eviction victim.
        dataset.states[index].rebuild_rows += engine.stats().full_rows_per_summarization;
        dataset.states[index].engines[slot] = Some(engine);
        dataset.states[index]
            .last_used
            .store(self.tick(), Ordering::Relaxed);
        self.note_persisted(dataset, seed_fp);
        Ok(1)
    }

    /// The write-path estimation: re-check the warm path (another writer may have
    /// built the engine while this request waited on the lock), then build what is
    /// missing, estimate, and persist the loaded seed set's `H` for future
    /// store-served requests.
    fn cold_estimate(
        &self,
        dataset: &mut Dataset,
        estimator: &dyn CompatibilityEstimator,
    ) -> Result<EstimateOutcome, String> {
        if let Some(outcome) = self.warm_estimate(dataset, estimator)? {
            return Ok(outcome);
        }
        let mut built = 0usize;
        if let Some(requirements) = estimator.summary_requirements() {
            built = self.ensure_engine(dataset, &requirements)?;
        }
        let (h, computations, store_hits) = self.estimate_with_ctx(dataset, estimator)?;
        let seed_fp = dataset.seeds.fingerprint();
        if seed_fp == dataset.initial_seed_fp && estimator.content_addressable() {
            if let Some(store) = &self.store {
                if let Err(e) =
                    store.save_h(dataset.graph_fingerprint(), seed_fp, &estimator.name(), &h)
                {
                    eprintln!("warning: could not persist the estimate: {e}");
                }
            }
        }
        Ok(EstimateOutcome {
            h,
            estimator: estimator.name(),
            computations: computations + built,
            store_hits,
            h_store_hits: 0,
        })
    }

    /// `estimate`: compatibility estimation on the named dataset's current seed
    /// set — warm requests run under the shared read lock.
    fn cmd_estimate(&self, request: &Json) -> Result<Json, String> {
        let name = dataset_name(request)?;
        let handle = self.dataset_handle(&name)?;
        let estimator = build_estimator(request, self.threads)?;
        let warm = {
            let dataset = self.dataset_read(&handle);
            self.warm_estimate(&dataset, estimator.as_ref())?
        };
        let outcome = match warm {
            Some(outcome) => outcome,
            None => {
                let mut dataset = self.dataset_write(&handle);
                self.cold_estimate(&mut dataset, estimator.as_ref())?
            }
        };
        self.record_estimate_metrics(&name, &outcome);
        Ok(Json::obj(vec![
            ("estimator", Json::str(outcome.estimator)),
            ("h", matrix_to_json(&outcome.h)),
            ("summary_computations", Json::num(outcome.computations)),
            ("store_hits", Json::num(outcome.store_hits)),
            ("optimize_store_hits", Json::num(outcome.h_store_hits)),
        ]))
    }

    /// `classify`: end-to-end estimation + propagation, optionally restricted to a
    /// node subset and optionally abstain-aware. The warm path holds one shared
    /// read lock across estimation *and* propagation, so no mutation can slip
    /// between the two stages.
    fn cmd_classify(&self, request: &Json) -> Result<Json, String> {
        let name = dataset_name(request)?;
        let handle = self.dataset_handle(&name)?;
        let propagator_name = request
            .get("propagator")
            .and_then(Json::as_str)
            .unwrap_or("linbp");
        let opts = PropagatorOptions {
            max_iterations: optional_usize(request, "iterations")?,
            tolerance: optional_f64(request, "tolerance")?,
            damping: optional_f64(request, "damping")?,
            threads: Some(self.threads),
        };
        let propagator =
            propagation_registry::by_name_with(propagator_name, &opts).ok_or_else(|| {
                format!(
                    "unknown propagation method '{propagator_name}' (expected one of {})",
                    propagation_registry::propagator_names().join(", ")
                )
            })?;
        let estimator = if propagator.uses_compatibilities() {
            Some(build_estimator(request, self.threads)?)
        } else {
            None
        };
        let subset = parse_subset(request)?;
        let abstain = request
            .get("abstain")
            .and_then(Json::as_bool)
            .unwrap_or(false);

        {
            let dataset = self.dataset_read(&handle);
            let warm = match &estimator {
                Some(estimator) => self.warm_estimate(&dataset, estimator.as_ref())?,
                None => {
                    // Homophily propagators ignore H; a uniform matrix keeps the
                    // call shape and never needs the write path.
                    self.probe();
                    let k = dataset.classes;
                    Some(EstimateOutcome {
                        h: DenseMatrix::filled(k, k, 1.0 / k as f64),
                        estimator: "none".to_string(),
                        computations: 0,
                        store_hits: 0,
                        h_store_hits: 0,
                    })
                }
            };
            if let Some(outcome) = warm {
                self.record_estimate_metrics(&name, &outcome);
                return finish_classify(&dataset, outcome, propagator.as_ref(), &subset, abstain);
            }
        }
        let mut dataset = self.dataset_write(&handle);
        let outcome = self.cold_estimate(
            &mut dataset,
            estimator
                .as_ref()
                .expect("cold path implies estimator")
                .as_ref(),
        )?;
        self.record_estimate_metrics(&name, &outcome);
        finish_classify(&dataset, outcome, propagator.as_ref(), &subset, abstain)
    }

    /// `stats`: session-wide counters (monotone across requests, engines, and
    /// reloads) plus a per-dataset breakdown keyed by dataset name.
    fn cmd_stats(&self) -> Json {
        let handles: Vec<(String, Arc<RwLock<Dataset>>)> = self
            .map_read()
            .iter()
            .map(|(name, handle)| (name.clone(), Arc::clone(handle)))
            .collect();
        let mut live_full_summarizations = 0usize;
        let mut datasets = Vec::with_capacity(handles.len());
        for (name, handle) in handles {
            let dataset: RwLockReadGuard<'_, Dataset> = self.dataset_read(&handle);
            live_full_summarizations += dataset.full_summarizations();
            datasets.push((name, dataset_stats(&dataset)));
        }
        let total = self.cache.computations()
            + live_full_summarizations
            + self.retired_full_summarizations.load(Ordering::Relaxed);
        let commands = {
            let commands = self.commands.lock().expect("command stats poisoned");
            Json::Obj(
                commands
                    .iter()
                    .map(|(name, stat)| {
                        (
                            name.clone(),
                            Json::obj(vec![
                                ("count", Json::num(stat.count)),
                                ("errors", Json::num(stat.errors)),
                            ]),
                        )
                    })
                    .collect(),
            )
        };
        Json::obj(vec![
            ("requests", Json::num(self.requests.load(Ordering::Relaxed))),
            ("summary_computations", Json::num(total)),
            ("store_hits", Json::num(self.cache.store_hits())),
            (
                "optimize_store_hits",
                Json::num(self.h_store_hits.load(Ordering::Relaxed)),
            ),
            ("datasets", Json::Obj(datasets)),
            ("commands", commands),
        ])
    }
}

fn error_response(id: &Json, line_no: usize, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("id", id.clone()),
        ("line", Json::num(line_no)),
        ("error", Json::str(format!("line {line_no}: {message}"))),
    ])
}

/// The dataset a request addresses: its optional `dataset` field, defaulting to
/// [`DEFAULT_DATASET`].
fn dataset_name(request: &Json) -> Result<String, String> {
    match request.get("dataset") {
        None | Some(Json::Null) => Ok(DEFAULT_DATASET.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| "field 'dataset' must be a string".to_string()),
    }
}

fn missing_dataset(name: &str) -> String {
    if name == DEFAULT_DATASET {
        "no dataset loaded: send a 'load' request first".to_string()
    } else {
        format!(
            "no dataset '{name}' loaded: send a 'load' request with \"dataset\":\"{name}\" first"
        )
    }
}

fn required_str(request: &Json, key: &str) -> Result<String, String> {
    request
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing required string field '{key}'"))
}

fn required_usize(request: &Json, key: &str) -> Result<usize, String> {
    request
        .get(key)
        .ok_or_else(|| format!("missing required field '{key}'"))?
        .as_usize()
        .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn optional_usize(request: &Json, key: &str) -> Result<Option<usize>, String> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn optional_f64(request: &Json, key: &str) -> Result<Option<f64>, String> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

/// Parse the `seed` request's three mutation arrays into one ordered batch
/// (adds, then removes, then relabels — within each array, request order).
fn parse_mutations(request: &Json) -> Result<Vec<SeedMutation>, String> {
    let mut mutations = Vec::new();
    let pairs = |key: &str| -> Result<Vec<(usize, usize)>, String> {
        match request.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("field '{key}' must be an array"))?;
                items
                    .iter()
                    .map(|item| {
                        let pair = item.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                            format!("field '{key}' must hold [node, label] pairs")
                        })?;
                        let node = pair[0]
                            .as_usize()
                            .ok_or_else(|| format!("'{key}' node ids must be integers"))?;
                        let label = pair[1]
                            .as_usize()
                            .ok_or_else(|| format!("'{key}' labels must be integers"))?;
                        Ok((node, label))
                    })
                    .collect()
            }
        }
    };
    for (node, label) in pairs("add")? {
        mutations.push(SeedMutation::Add { node, label });
    }
    match request.get("remove") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| "field 'remove' must be an array of node ids".to_string())?;
            for item in items {
                let node = item
                    .as_usize()
                    .ok_or_else(|| "'remove' node ids must be integers".to_string())?;
                mutations.push(SeedMutation::Remove { node });
            }
        }
    }
    for (node, label) in pairs("relabel")? {
        mutations.push(SeedMutation::Relabel { node, label });
    }
    if mutations.is_empty() {
        return Err("seed request carries no mutations (use add / remove / relabel)".into());
    }
    Ok(mutations)
}

/// Apply a validated mutation batch to a seed set in place (O(1) rolling
/// fingerprint update per mutation).
fn apply_to_seeds(seeds: &mut SeedLabels, mutations: &[SeedMutation]) {
    for m in mutations {
        let (node, label) = match *m {
            SeedMutation::Add { node, label } | SeedMutation::Relabel { node, label } => {
                (node, Some(label))
            }
            SeedMutation::Remove { node } => (node, None),
        };
        seeds.set_label(node, label).expect("validated by caller");
    }
}

/// Build the estimator described by a request through the fg-core registry.
fn build_estimator(
    request: &Json,
    threads: Threads,
) -> Result<Box<dyn CompatibilityEstimator>, String> {
    let method = request
        .get("method")
        .and_then(Json::as_str)
        .unwrap_or("dcer");
    let variant = match optional_usize(request, "variant")? {
        Some(index) => Some(
            NormalizationVariant::from_index(index)
                .ok_or_else(|| format!("variant {index} is not one of 1, 2, 3"))?,
        ),
        None => None,
    };
    let defaults = EstimatorOptions {
        max_length: optional_usize(request, "lmax")?,
        lambda: optional_f64(request, "lambda")?,
        restarts: optional_usize(request, "restarts")?,
        splits: optional_usize(request, "splits")?,
        variant,
        non_backtracking: None,
        lowrank: None,
        rank: optional_usize(request, "rank")?,
        threads: Some(threads),
    };
    estimator_by_name_with(method, &defaults)
}

fn matrix_to_json(h: &DenseMatrix) -> Json {
    Json::Arr(
        (0..h.rows())
            .map(|i| Json::Arr(h.row(i).iter().map(|&v| Json::Num(v)).collect()))
            .collect(),
    )
}

/// Parse the optional `nodes` subset of a `classify` request.
fn parse_subset(request: &Json) -> Result<Option<Vec<usize>>, String> {
    match request.get("nodes") {
        None | Some(Json::Null) => Ok(None),
        Some(v) => Ok(Some(
            v.as_array()
                .ok_or_else(|| "field 'nodes' must be an array of node ids".to_string())?
                .iter()
                .map(|item| {
                    item.as_usize()
                        .ok_or_else(|| "'nodes' ids must be integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        )),
    }
}

/// The propagation half of `classify`: runs with whichever lock the caller holds.
fn finish_classify(
    dataset: &Dataset,
    estimate: EstimateOutcome,
    propagator: &dyn Propagator,
    subset: &Option<Vec<usize>>,
    abstain: bool,
) -> Result<Json, String> {
    if let Some(nodes) = subset {
        if let Some(&bad) = nodes.iter().find(|&&n| n >= dataset.graph.num_nodes()) {
            return Err(format!(
                "'nodes' id {bad} out of range (graph has {} nodes)",
                dataset.graph.num_nodes()
            ));
        }
    }
    let outcome = propagator
        .propagate(&dataset.graph, &dataset.seeds, &estimate.h)
        .map_err(|e| e.to_string())?;

    let abstaining = abstain.then(|| outcome.predictions_or_abstain());
    let label_json = |node: usize| -> Json {
        match &abstaining {
            Some(preds) => match preds[node] {
                Some(label) => Json::num(label),
                None => Json::Null,
            },
            None => Json::num(outcome.predictions[node]),
        }
    };
    let predictions = match subset {
        Some(nodes) => Json::Arr(
            nodes
                .iter()
                .map(|&n| Json::Arr(vec![Json::num(n), label_json(n)]))
                .collect(),
        ),
        None => Json::Arr((0..outcome.predictions.len()).map(label_json).collect()),
    };
    let mut fields = vec![
        ("estimator", Json::str(estimate.estimator)),
        ("propagator", Json::str(propagator.name())),
        ("iterations", Json::num(outcome.iterations)),
        ("converged", Json::Bool(outcome.converged)),
        ("predictions", predictions),
        ("summary_computations", Json::num(estimate.computations)),
        ("store_hits", Json::num(estimate.store_hits)),
        ("optimize_store_hits", Json::num(estimate.h_store_hits)),
    ];
    if let Some(abstaining) = &abstaining {
        let rate = fg_propagation::abstention_rate(abstaining, &dataset.seeds.unlabeled_nodes());
        fields.push(("abstention_rate", Json::Num(rate)));
    }
    Ok(Json::obj(fields))
}

/// The per-dataset block of a `stats` response.
fn dataset_stats(dataset: &Dataset) -> Json {
    let engines = Json::Arr(
        dataset
            .states
            .iter()
            .flat_map(|state| {
                state
                    .engines
                    .iter()
                    .enumerate()
                    .filter_map(move |(mode, engine)| engine.as_ref().map(|e| (state, mode, e)))
            })
            .map(|(state, mode, engine)| {
                let stats = engine.stats();
                Json::obj(vec![
                    ("seed_fingerprint", Json::str(state.seed_fp.to_hex())),
                    ("rebuild_rows", Json::num(state.rebuild_rows)),
                    ("mode", Json::str(if mode == 1 { "nb" } else { "all" })),
                    ("lmax", Json::num(engine.max_length())),
                    ("full_summarizations", Json::num(stats.full_summarizations)),
                    ("delta_mutations", Json::num(stats.delta_mutations)),
                    ("delta_rows_touched", Json::num(stats.delta_rows_touched)),
                    (
                        "full_rows_per_summarization",
                        Json::num(stats.full_rows_per_summarization),
                    ),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("label", Json::str(dataset.label.clone())),
        ("nodes", Json::num(dataset.graph.num_nodes())),
        ("edges", Json::num(dataset.graph.num_edges())),
        ("classes", Json::num(dataset.classes)),
        ("labeled", Json::num(dataset.seeds.num_labeled())),
        (
            "seed_fingerprint",
            Json::str(dataset.seeds.fingerprint().to_hex()),
        ),
        (
            "seed_scratch_derivations",
            Json::num(dataset.seeds.scratch_derivations()),
        ),
        ("engine_states", Json::num(dataset.states.len())),
        ("engine_evictions", Json::num(dataset.engine_evictions)),
        (
            "engine_rebuild_rows",
            Json::num(dataset.states.iter().map(|s| s.rebuild_rows).sum::<usize>()),
        ),
        ("engines", engines),
    ])
}

/// Convenience for tests and the CLI client: extract a full-graph prediction vector
/// from a `classify` response line, rendered in the same `node<TAB>class` format the
/// batch CLI writes (abstentions render as `abstain`).
pub fn predictions_to_file_format(response: &str) -> Option<String> {
    let parsed = Json::parse(response).ok()?;
    let predictions = parsed.get("result")?.get("predictions")?.as_array()?;
    let mut out = String::from("# node\tpredicted_class\n");
    for (node, item) in predictions.iter().enumerate() {
        match item {
            Json::Arr(pair) if pair.len() == 2 => {
                let id = pair[0].as_usize()?;
                match &pair[1] {
                    Json::Null => out.push_str(&format!("{id}\tabstain\n")),
                    v => out.push_str(&format!("{id}\t{}\n", v.as_usize()?)),
                }
            }
            Json::Null => out.push_str(&format!("{node}\tabstain\n")),
            v => out.push_str(&format!("{node}\t{}\n", v.as_usize()?)),
        }
    }
    Some(out)
}
