//! The long-lived serving [`Session`]: graph + seed state + incremental summary
//! engines + shared caches behind a JSON-lines command protocol.
//!
//! One session is shared by every connection of an `fg serve` process (that is the
//! point: the expensive state — graph, `DeltaSummary` engines, summary cache — is
//! paid once and amortized across requests). Request handling is serialized by one
//! mutex, so every response is a deterministic function of the session history; all
//! floating-point work runs through the bit-identical kernels, so responses carry no
//! timing-dependent payloads (timings are only reported in aggregate by `stats`).
//!
//! # Protocol
//!
//! One JSON object per line in, one per line out. Requests name a command in `cmd`
//! and may carry an `id` of any JSON type, echoed verbatim in the response.
//! Responses are `{"ok":true,"id":...,"result":{...}}` or
//! `{"ok":false,"id":...,"line":N,"error":"..."}` — malformed requests (bad JSON,
//! unknown commands, invalid parameters) produce an error response with the
//! connection's line number and never terminate the session.
//!
//! | command    | parameters                                                        |
//! |------------|-------------------------------------------------------------------|
//! | `ping`     | —                                                                 |
//! | `load`     | `edges`, `labels`, `nodes`, `classes`                             |
//! | `seed`     | `add` `[[node,label],..]`, `remove` `[node,..]`, `relabel` `[[node,label],..]` |
//! | `estimate` | `method`, `lmax`, `lambda`, `restarts`, `splits`, `variant`       |
//! | `classify` | estimate's parameters + `propagator`, `iterations`, `tolerance`, `damping`, `nodes` (subset), `abstain` |
//! | `stats`    | —                                                                 |
//! | `shutdown` | — (closes this connection; the process keeps serving others)      |
//!
//! `seed` mutations are folded into the maintained summaries by the
//! [`DeltaSummary`] engines — after the first `estimate`/`classify` warm-up, a seed
//! change costs work proportional to the mutated node's neighborhood and subsequent
//! requests report `summary_computations: 0`, bit-identical to a cold batch run on
//! the same seed set.

use crate::json::Json;
use fg_core::incremental::{validate_mutations, DeltaSummary, SeedMutation};
use fg_core::prelude::*;
use fg_core::{estimator_by_name_with, EstimatorOptions, SummaryStore};
use fg_graph::Fingerprint;
use fg_propagation::registry as propagation_registry;
use fg_propagation::PropagatorOptions;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Whether the serving loop should keep reading after a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Flow {
    /// Keep the connection open.
    Continue,
    /// Close this connection after writing the response.
    Close,
}

/// The loaded dataset plus its incremental machinery.
struct Dataset {
    graph: Arc<Graph>,
    seeds: SeedLabels,
    classes: usize,
    label: String,
    /// One engine per counting mode (index 0 = plain paths, 1 = non-backtracking),
    /// created lazily by the first estimator that needs the mode.
    engines: [Option<DeltaSummary>; 2],
    /// Whether the corresponding engine's current counts are already in the
    /// shared cache (and store, when attached). Cleared by seed mutations and
    /// engine (re)builds, so a warm session answering mutation-free requests does
    /// zero publish clones and zero store writes.
    published: [bool; 2],
    /// Fingerprint of the seed set as loaded from disk. Store entries for this
    /// fingerprint are shared with batch runs and future sessions on the same
    /// files, so mutation-time pruning must never touch it — only the session's
    /// own intermediate (mutated) fingerprints are transient.
    initial_seed_fp: Fingerprint,
}

impl Dataset {
    fn graph_fingerprint(&self) -> Fingerprint {
        self.graph.fingerprint()
    }
}

/// Aggregate per-command counters for `stats`.
#[derive(Debug, Default, Clone)]
struct CommandStat {
    count: usize,
    errors: usize,
    total: Duration,
}

struct State {
    threads: Threads,
    cache: Arc<SummaryCache>,
    store: Option<Arc<SummaryStore>>,
    dataset: Option<Dataset>,
    requests: usize,
    /// Full summarizations performed by engines that were since dropped (dataset
    /// reloads, lmax upgrades) — keeps the session-wide total monotone.
    retired_full_summarizations: usize,
    commands: BTreeMap<String, CommandStat>,
}

impl State {
    /// Session-wide count of full `O(n·paths)` summarizations: context/cache misses
    /// plus every engine construction or fallback, including retired engines.
    fn total_summary_computations(&self) -> usize {
        let engine_total: usize = self
            .dataset
            .iter()
            .flat_map(|d| d.engines.iter().flatten())
            .map(|e| e.stats().full_summarizations)
            .sum();
        self.cache.computations() + engine_total + self.retired_full_summarizations
    }
}

/// A long-lived serving session (see the [module docs](self) for the protocol).
/// Shared across connections behind an `Arc`; all request handling is serialized.
pub struct Session {
    state: Mutex<State>,
}

impl Session {
    /// Create a session with the given thread policy and optional persistent
    /// summary store.
    pub fn new(threads: Threads, store: Option<Arc<SummaryStore>>) -> Session {
        Session {
            state: Mutex::new(State {
                threads,
                cache: SummaryCache::shared(),
                store,
                dataset: None,
                requests: 0,
                retired_full_summarizations: 0,
                commands: BTreeMap::new(),
            }),
        }
    }

    /// Handle one raw request line, producing the response line and the connection
    /// disposition. `line_no` is the 1-based line number within the connection,
    /// echoed in error responses so clients can pinpoint the offending request.
    pub fn handle_line(&self, line: &str, line_no: usize) -> (String, Flow) {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return (
                error_response(&Json::Null, line_no, "empty request line").to_string(),
                Flow::Continue,
            );
        }
        let request = match Json::parse(trimmed) {
            Ok(v) => v,
            Err(e) => {
                return (
                    error_response(&Json::Null, line_no, &format!("invalid JSON: {e}")).to_string(),
                    Flow::Continue,
                );
            }
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let cmd = match request.get("cmd").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => {
                return (
                    error_response(&id, line_no, "request object needs a string 'cmd' field")
                        .to_string(),
                    Flow::Continue,
                );
            }
        };

        let start = Instant::now();
        let mut state = self.state.lock().expect("session state poisoned");
        state.requests += 1;
        let (outcome, flow) = match cmd.as_str() {
            "ping" => (Ok(Json::str("pong")), Flow::Continue),
            "load" => (cmd_load(&mut state, &request), Flow::Continue),
            "seed" => (cmd_seed(&mut state, &request), Flow::Continue),
            "estimate" => (cmd_estimate(&mut state, &request), Flow::Continue),
            "classify" => (cmd_classify(&mut state, &request), Flow::Continue),
            "stats" => (Ok(cmd_stats(&state)), Flow::Continue),
            "shutdown" => (Ok(Json::str("closing connection")), Flow::Close),
            other => (
                Err(format!(
                    "unknown command '{other}' (expected ping, load, seed, estimate, \
                     classify, stats, or shutdown)"
                )),
                Flow::Continue,
            ),
        };
        let stat = state.commands.entry(cmd).or_default();
        stat.count += 1;
        stat.total += start.elapsed();
        if outcome.is_err() {
            stat.errors += 1;
        }
        let response = match outcome {
            Ok(result) => Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("id", id),
                ("result", result),
            ]),
            Err(message) => error_response(&id, line_no, &message),
        };
        (response.to_string(), flow)
    }
}

fn error_response(id: &Json, line_no: usize, message: &str) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("id", id.clone()),
        ("line", Json::num(line_no)),
        ("error", Json::str(format!("line {line_no}: {message}"))),
    ])
}

fn required_str(request: &Json, key: &str) -> Result<String, String> {
    request
        .get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing required string field '{key}'"))
}

fn required_usize(request: &Json, key: &str) -> Result<usize, String> {
    request
        .get(key)
        .ok_or_else(|| format!("missing required field '{key}'"))?
        .as_usize()
        .ok_or_else(|| format!("field '{key}' must be a non-negative integer"))
}

fn optional_usize(request: &Json, key: &str) -> Result<Option<usize>, String> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_usize()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a non-negative integer")),
    }
}

fn optional_f64(request: &Json, key: &str) -> Result<Option<f64>, String> {
    match request.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("field '{key}' must be a number")),
    }
}

fn dataset_of(state: &mut State) -> Result<&mut Dataset, String> {
    state
        .dataset
        .as_mut()
        .ok_or_else(|| "no dataset loaded: send a 'load' request first".to_string())
}

/// `load`: read an edge list + seed label file, replacing any previous dataset
/// (whose cache entries and engines are retired).
fn cmd_load(state: &mut State, request: &Json) -> Result<Json, String> {
    let edges = required_str(request, "edges")?;
    let labels = required_str(request, "labels")?;
    let nodes = required_usize(request, "nodes")?;
    let classes = required_usize(request, "classes")?;
    let graph = fg_datasets::read_edge_list(Path::new(&edges), nodes).map_err(|e| e.to_string())?;
    let seeds =
        fg_datasets::read_labels(Path::new(&labels), nodes, classes).map_err(|e| e.to_string())?;

    // Retire the previous dataset: evict its cache entry so the session cache does
    // not grow across reloads, and keep its engines' work counters in the totals.
    if let Some(old) = state.dataset.take() {
        state
            .cache
            .remove(old.graph_fingerprint(), old.seeds.fingerprint());
        state.retired_full_summarizations += old
            .engines
            .iter()
            .flatten()
            .map(|e| e.stats().full_summarizations)
            .sum::<usize>();
    }
    let initial_seed_fp = seeds.fingerprint();
    let dataset = Dataset {
        graph: Arc::new(graph),
        seeds,
        classes,
        label: edges.clone(),
        engines: [None, None],
        published: [false, false],
        initial_seed_fp,
    };
    let result = Json::obj(vec![
        ("nodes", Json::num(dataset.graph.num_nodes())),
        ("edges", Json::num(dataset.graph.num_edges())),
        ("classes", Json::num(classes)),
        ("labeled", Json::num(dataset.seeds.num_labeled())),
        (
            "graph_fingerprint",
            Json::str(dataset.graph_fingerprint().to_hex()),
        ),
        (
            "seed_fingerprint",
            Json::str(dataset.seeds.fingerprint().to_hex()),
        ),
    ]);
    state.dataset = Some(dataset);
    Ok(result)
}

/// Parse the `seed` request's three mutation arrays into one ordered batch
/// (adds, then removes, then relabels — within each array, request order).
fn parse_mutations(request: &Json) -> Result<Vec<SeedMutation>, String> {
    let mut mutations = Vec::new();
    let pairs = |key: &str| -> Result<Vec<(usize, usize)>, String> {
        match request.get(key) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| format!("field '{key}' must be an array"))?;
                items
                    .iter()
                    .map(|item| {
                        let pair = item.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
                            format!("field '{key}' must hold [node, label] pairs")
                        })?;
                        let node = pair[0]
                            .as_usize()
                            .ok_or_else(|| format!("'{key}' node ids must be integers"))?;
                        let label = pair[1]
                            .as_usize()
                            .ok_or_else(|| format!("'{key}' labels must be integers"))?;
                        Ok((node, label))
                    })
                    .collect()
            }
        }
    };
    for (node, label) in pairs("add")? {
        mutations.push(SeedMutation::Add { node, label });
    }
    match request.get("remove") {
        None | Some(Json::Null) => {}
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| "field 'remove' must be an array of node ids".to_string())?;
            for item in items {
                let node = item
                    .as_usize()
                    .ok_or_else(|| "'remove' node ids must be integers".to_string())?;
                mutations.push(SeedMutation::Remove { node });
            }
        }
    }
    for (node, label) in pairs("relabel")? {
        mutations.push(SeedMutation::Relabel { node, label });
    }
    if mutations.is_empty() {
        return Err("seed request carries no mutations (use add / remove / relabel)".into());
    }
    Ok(mutations)
}

/// `seed`: apply a mutation batch to the authoritative seed set and every live
/// engine, evicting the superseded cache entry.
fn cmd_seed(state: &mut State, request: &Json) -> Result<Json, String> {
    let mutations = parse_mutations(request)?;
    let cache = Arc::clone(&state.cache);
    let store = state.store.clone();
    let dataset = dataset_of(state)?;
    validate_mutations(&dataset.seeds, &mutations).map_err(|e| e.to_string())?;

    let old_fp = dataset.seeds.fingerprint();
    let mut delta_applied = 0usize;
    let mut full_recomputes = 0usize;
    let mut rows_touched = 0usize;
    for engine in dataset.engines.iter_mut().flatten() {
        let outcome = engine.apply(&mutations).map_err(|e| e.to_string())?;
        delta_applied += outcome.delta_applied;
        full_recomputes += outcome.full_recomputes;
        rows_touched += outcome.rows_touched;
    }
    for m in &mutations {
        let (node, label) = match *m {
            SeedMutation::Add { node, label } | SeedMutation::Relabel { node, label } => {
                (node, Some(label))
            }
            SeedMutation::Remove { node } => (node, None),
        };
        dataset
            .seeds
            .set_label(node, label)
            .expect("validated above");
    }
    // The old seed set's summaries are superseded; keep the cache at one live key
    // per dataset and flag the engines' fresh counts for (re)publication. Persisted
    // files are pruned only for the session's own intermediate fingerprints —
    // a mutated state no other process can ever re-derive. The *loaded* seed
    // file's entry is shared with batch runs and future sessions on the same
    // files and must survive.
    cache.remove(dataset.graph_fingerprint(), old_fp);
    if old_fp != dataset.initial_seed_fp {
        if let Some(store) = &store {
            for non_backtracking in [false, true] {
                if let Err(e) = store.remove(dataset.graph_fingerprint(), old_fp, non_backtracking)
                {
                    eprintln!("warning: could not prune superseded summary: {e}");
                }
            }
        }
    }
    dataset.published = [false, false];
    Ok(Json::obj(vec![
        ("mutations", Json::num(mutations.len())),
        ("labeled", Json::num(dataset.seeds.num_labeled())),
        (
            "seed_fingerprint",
            Json::str(dataset.seeds.fingerprint().to_hex()),
        ),
        ("delta_applied", Json::num(delta_applied)),
        ("full_recomputes", Json::num(full_recomputes)),
        ("rows_touched", Json::num(rows_touched)),
    ]))
}

/// Build the estimator described by a request through the fg-core registry.
fn build_estimator(
    request: &Json,
    threads: Threads,
) -> Result<Box<dyn CompatibilityEstimator>, String> {
    let method = request
        .get("method")
        .and_then(Json::as_str)
        .unwrap_or("dcer");
    let variant = match optional_usize(request, "variant")? {
        Some(index) => Some(
            NormalizationVariant::from_index(index)
                .ok_or_else(|| format!("variant {index} is not one of 1, 2, 3"))?,
        ),
        None => None,
    };
    let defaults = EstimatorOptions {
        max_length: optional_usize(request, "lmax")?,
        lambda: optional_f64(request, "lambda")?,
        restarts: optional_usize(request, "restarts")?,
        splits: optional_usize(request, "splits")?,
        variant,
        non_backtracking: None,
        threads: Some(threads),
    };
    estimator_by_name_with(method, &defaults)
}

/// Ensure the engine for a counting mode maintains at least `max_length` paths,
/// building (or rebuilding longer) via one full summarization when needed, then
/// publish its counts so context requests are cache hits.
fn ensure_engine(
    state: &mut State,
    non_backtracking: bool,
    max_length: usize,
) -> Result<(), String> {
    let threads = state.threads;
    let cache = Arc::clone(&state.cache);
    let store = state.store.clone();
    let mut retired = 0usize;
    let dataset = dataset_of(state)?;
    let slot = usize::from(non_backtracking);
    let needs_build = match &dataset.engines[slot] {
        Some(engine) => engine.max_length() < max_length,
        None => true,
    };
    if needs_build {
        // Maintain at least the paper's ℓmax = 5 so later default requests reuse
        // the same engine instead of forcing a rebuild.
        let target = max_length.max(5);
        if let Some(old) = dataset.engines[slot].take() {
            retired = old.stats().full_summarizations;
        }
        let engine = DeltaSummary::new(
            Arc::clone(&dataset.graph),
            dataset.seeds.clone(),
            target,
            non_backtracking,
            threads,
        )
        .map_err(|e| e.to_string())?;
        dataset.engines[slot] = Some(engine);
        dataset.published[slot] = false;
    }
    // Publish (and persist) only when the engine's counts changed since the last
    // publication — a warm session answering mutation-free requests re-does no
    // cache clones and no store I/O.
    if !dataset.published[slot] {
        let engine = dataset.engines[slot].as_ref().expect("built above");
        engine.publish_to(&cache);
        if let Some(store) = &store {
            if let Err(e) = engine.persist_to(store) {
                eprintln!("warning: could not persist summary: {e}");
            }
        }
        dataset.published[slot] = true;
    }
    state.retired_full_summarizations += retired;
    Ok(())
}

/// Shared estimation path of `estimate` and `classify`: warm the right engine,
/// publish its counts, and estimate through a cache-backed context. Returns the
/// estimate plus the per-request work counters.
fn estimate_h(
    state: &mut State,
    request: &Json,
) -> Result<(DenseMatrix, String, usize, usize), String> {
    let estimator = build_estimator(request, state.threads)?;
    let computations_before = state.total_summary_computations();
    if let Some(requirements) = estimator.summary_requirements() {
        ensure_engine(
            state,
            requirements.non_backtracking,
            requirements.max_length,
        )?;
    }
    let threads = state.threads;
    let cache = Arc::clone(&state.cache);
    let store = state.store.clone();
    let store_hits_before = cache.store_hits();
    let dataset = dataset_of(state)?;
    let mut ctx = EstimationContext::with_cache(&dataset.graph, &dataset.seeds, Arc::clone(&cache))
        .threads(threads);
    if let Some(store) = store {
        ctx = ctx.store(store);
    }
    let h = estimator
        .estimate_with_context(&ctx)
        .map_err(|e| e.to_string())?;
    let name = estimator.name();
    drop(ctx);
    let computations = state.total_summary_computations() - computations_before;
    let store_hits = state.cache.store_hits() - store_hits_before;
    Ok((h, name, computations, store_hits))
}

fn matrix_to_json(h: &DenseMatrix) -> Json {
    Json::Arr(
        (0..h.rows())
            .map(|i| Json::Arr(h.row(i).iter().map(|&v| Json::Num(v)).collect()))
            .collect(),
    )
}

/// `estimate`: compatibility estimation on the current seed set.
fn cmd_estimate(state: &mut State, request: &Json) -> Result<Json, String> {
    let (h, name, computations, store_hits) = estimate_h(state, request)?;
    Ok(Json::obj(vec![
        ("estimator", Json::str(name)),
        ("h", matrix_to_json(&h)),
        ("summary_computations", Json::num(computations)),
        ("store_hits", Json::num(store_hits)),
    ]))
}

/// `classify`: end-to-end estimation + propagation, optionally restricted to a node
/// subset and optionally abstain-aware.
fn cmd_classify(state: &mut State, request: &Json) -> Result<Json, String> {
    let propagator_name = request
        .get("propagator")
        .and_then(Json::as_str)
        .unwrap_or("linbp");
    let opts = PropagatorOptions {
        max_iterations: optional_usize(request, "iterations")?,
        tolerance: optional_f64(request, "tolerance")?,
        damping: optional_f64(request, "damping")?,
        threads: Some(state.threads),
    };
    let propagator =
        propagation_registry::by_name_with(propagator_name, &opts).ok_or_else(|| {
            format!(
                "unknown propagation method '{propagator_name}' (expected one of {})",
                propagation_registry::propagator_names().join(", ")
            )
        })?;

    let (h, estimator_name, computations, store_hits) = if propagator.uses_compatibilities() {
        estimate_h(state, request)?
    } else {
        let k = dataset_of(state)?.classes;
        (
            DenseMatrix::filled(k, k, 1.0 / k as f64),
            "none".to_string(),
            0,
            0,
        )
    };

    let subset: Option<Vec<usize>> = match request.get("nodes") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_array()
                .ok_or_else(|| "field 'nodes' must be an array of node ids".to_string())?
                .iter()
                .map(|item| {
                    item.as_usize()
                        .ok_or_else(|| "'nodes' ids must be integers".to_string())
                })
                .collect::<Result<Vec<_>, _>>()?,
        ),
    };
    let abstain = request
        .get("abstain")
        .and_then(Json::as_bool)
        .unwrap_or(false);

    let dataset = dataset_of(state)?;
    if let Some(nodes) = &subset {
        if let Some(&bad) = nodes.iter().find(|&&n| n >= dataset.graph.num_nodes()) {
            return Err(format!(
                "'nodes' id {bad} out of range (graph has {} nodes)",
                dataset.graph.num_nodes()
            ));
        }
    }
    let outcome = propagator
        .propagate(&dataset.graph, &dataset.seeds, &h)
        .map_err(|e| e.to_string())?;

    let abstaining = abstain.then(|| outcome.predictions_or_abstain());
    let label_json = |node: usize| -> Json {
        match &abstaining {
            Some(preds) => match preds[node] {
                Some(label) => Json::num(label),
                None => Json::Null,
            },
            None => Json::num(outcome.predictions[node]),
        }
    };
    let predictions = match &subset {
        Some(nodes) => Json::Arr(
            nodes
                .iter()
                .map(|&n| Json::Arr(vec![Json::num(n), label_json(n)]))
                .collect(),
        ),
        None => Json::Arr((0..outcome.predictions.len()).map(label_json).collect()),
    };
    let mut fields = vec![
        ("estimator", Json::str(estimator_name)),
        ("propagator", Json::str(propagator.name())),
        ("iterations", Json::num(outcome.iterations)),
        ("converged", Json::Bool(outcome.converged)),
        ("predictions", predictions),
        ("summary_computations", Json::num(computations)),
        ("store_hits", Json::num(store_hits)),
    ];
    if let Some(abstaining) = &abstaining {
        let rate = fg_propagation::abstention_rate(abstaining, &dataset.seeds.unlabeled_nodes());
        fields.push(("abstention_rate", Json::Num(rate)));
    }
    Ok(Json::obj(fields))
}

/// `stats`: session-wide counters (monotone across requests, engines, and reloads).
fn cmd_stats(state: &State) -> Json {
    let dataset = match &state.dataset {
        Some(d) => {
            let engines = Json::Arr(
                d.engines
                    .iter()
                    .enumerate()
                    .filter_map(|(mode, engine)| engine.as_ref().map(|e| (mode, e)))
                    .map(|(mode, engine)| {
                        let stats = engine.stats();
                        Json::obj(vec![
                            ("mode", Json::str(if mode == 1 { "nb" } else { "all" })),
                            ("lmax", Json::num(engine.max_length())),
                            ("full_summarizations", Json::num(stats.full_summarizations)),
                            ("delta_mutations", Json::num(stats.delta_mutations)),
                            ("delta_rows_touched", Json::num(stats.delta_rows_touched)),
                            (
                                "full_rows_per_summarization",
                                Json::num(stats.full_rows_per_summarization),
                            ),
                        ])
                    })
                    .collect(),
            );
            Json::obj(vec![
                ("dataset", Json::str(d.label.clone())),
                ("nodes", Json::num(d.graph.num_nodes())),
                ("edges", Json::num(d.graph.num_edges())),
                ("classes", Json::num(d.classes)),
                ("labeled", Json::num(d.seeds.num_labeled())),
                ("engines", engines),
            ])
        }
        None => Json::Null,
    };
    let commands = Json::Obj(
        state
            .commands
            .iter()
            .map(|(name, stat)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("count", Json::num(stat.count)),
                        ("errors", Json::num(stat.errors)),
                        ("seconds", Json::Num(stat.total.as_secs_f64())),
                    ]),
                )
            })
            .collect(),
    );
    Json::obj(vec![
        ("requests", Json::num(state.requests)),
        (
            "summary_computations",
            Json::num(state.total_summary_computations()),
        ),
        ("store_hits", Json::num(state.cache.store_hits())),
        ("dataset", dataset),
        ("commands", commands),
    ])
}

/// Convenience for tests and the CLI client: extract a full-graph prediction vector
/// from a `classify` response line, rendered in the same `node<TAB>class` format the
/// batch CLI writes (abstentions render as `abstain`).
pub fn predictions_to_file_format(response: &str) -> Option<String> {
    let parsed = Json::parse(response).ok()?;
    let predictions = parsed.get("result")?.get("predictions")?.as_array()?;
    let mut out = String::from("# node\tpredicted_class\n");
    for (node, item) in predictions.iter().enumerate() {
        match item {
            Json::Arr(pair) if pair.len() == 2 => {
                let id = pair[0].as_usize()?;
                match &pair[1] {
                    Json::Null => out.push_str(&format!("{id}\tabstain\n")),
                    v => out.push_str(&format!("{id}\t{}\n", v.as_usize()?)),
                }
            }
            Json::Null => out.push_str(&format!("{node}\tabstain\n")),
            v => out.push_str(&format!("{node}\t{}\n", v.as_usize()?)),
        }
    }
    Some(out)
}
