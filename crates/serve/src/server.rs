//! Transports for a [`Session`]: a line loop over arbitrary reader/writer pairs
//! (stdin/stdout for `fg serve`, a socket per TCP connection) and a `std::net` TCP
//! listener that shares one session across concurrent connections.
//!
//! Both transports are bounded by [`ServeLimits`]: per-connection request lines are
//! read through a fixed-size window (a client streaming an endless line cannot
//! balloon memory), connections past the cap are refused with a structured error
//! line instead of queueing, and a per-connection request budget (when set) closes
//! the connection after its last allowed response. Every limit violation produces a
//! well-formed protocol error — the process never hangs and never dies on abusive
//! input.

use crate::json::Json;
use crate::session::{Flow, Session};
use fg_obs::{Gauge, MetricsRegistry};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Resource bounds for a serving transport. `Default` gives production-safe
/// values; `0` means "unlimited" for the connection and request counts, but the
/// line length is always enforced.
#[derive(Debug, Clone, Copy)]
pub struct ServeLimits {
    /// Concurrent TCP connections accepted before new ones are refused with a
    /// structured error line (`0` = unlimited).
    pub max_connections: usize,
    /// Longest accepted request line in bytes; an overlong line gets a structured
    /// error response and closes the connection (the stream cannot be resynced).
    pub max_line_bytes: usize,
    /// Requests served per connection before it is closed (`0` = unlimited).
    pub max_requests_per_connection: usize,
}

impl Default for ServeLimits {
    fn default() -> ServeLimits {
        ServeLimits {
            max_connections: 64,
            max_line_bytes: 1 << 20,
            max_requests_per_connection: 0,
        }
    }
}

/// A protocol-shaped error line built transport-side (the session never sees the
/// offending input).
fn transport_error(line_no: usize, message: &str) -> String {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("id", Json::Null),
        ("line", Json::num(line_no)),
        ("error", Json::str(format!("line {line_no}: {message}"))),
    ])
    .to_string()
}

/// Read one `\n`-terminated line through a window of `max + 1` bytes. Returns
/// `Ok(None)` at EOF and `Ok(Some((bytes, overlong)))` otherwise — `overlong`
/// means the line was cut off at the window and the stream is unsafe to resync.
fn read_bounded_line<R: BufRead>(
    reader: &mut R,
    max: usize,
) -> io::Result<Option<(Vec<u8>, bool)>> {
    let mut buf = Vec::new();
    let n = reader
        .by_ref()
        .take(max as u64 + 1)
        .read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    let overlong = buf.len() > max && buf.last() != Some(&b'\n');
    Ok(Some((buf, overlong)))
}

/// Serve JSON-lines requests from `reader`, writing one response line per request
/// to `writer`, until EOF, a `shutdown` request, or a limit violation. Line
/// numbers (1-based, counting every received line) are echoed in error responses.
pub fn serve_lines_with<R: BufRead, W: Write>(
    session: &Session,
    mut reader: R,
    mut writer: W,
    limits: &ServeLimits,
) -> io::Result<()> {
    let mut line_no = 0usize;
    let mut served = 0usize;
    let respond = |writer: &mut W, response: &str| -> io::Result<()> {
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    };
    while let Some((bytes, overlong)) = read_bounded_line(&mut reader, limits.max_line_bytes)? {
        line_no += 1;
        if overlong {
            respond(
                &mut writer,
                &transport_error(
                    line_no,
                    &format!(
                        "request line exceeds {} bytes; closing connection",
                        limits.max_line_bytes
                    ),
                ),
            )?;
            break;
        }
        let line = match std::str::from_utf8(&bytes) {
            Ok(line) => line,
            Err(_) => {
                respond(
                    &mut writer,
                    &transport_error(line_no, "request line is not valid UTF-8"),
                )?;
                continue;
            }
        };
        if line.trim().is_empty() {
            // Blank lines are tolerated between requests (they still count for
            // line numbering so errors point at the right request).
            continue;
        }
        let (response, flow) = session.handle_line(line, line_no);
        respond(&mut writer, &response)?;
        if flow == Flow::Close {
            break;
        }
        served += 1;
        if limits.max_requests_per_connection > 0 && served >= limits.max_requests_per_connection {
            break;
        }
    }
    Ok(())
}

/// [`serve_lines_with`] under the default [`ServeLimits`].
pub fn serve_lines<R: BufRead, W: Write>(
    session: &Session,
    reader: R,
    writer: W,
) -> io::Result<()> {
    serve_lines_with(session, reader, writer, &ServeLimits::default())
}

/// A TCP front-end sharing one [`Session`] across connections.
pub struct TcpServer {
    listener: TcpListener,
    session: Arc<Session>,
    limits: ServeLimits,
}

/// Decrements the live-connection count (and the scrapeable gauge) when a
/// connection handler exits, however it exits.
struct ConnectionGuard(Arc<AtomicUsize>, Arc<Gauge>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
        self.1.dec();
    }
}

impl TcpServer {
    /// Bind the listener under explicit limits (use port 0 for an ephemeral port;
    /// the bound address is reported by [`local_addr`](Self::local_addr)).
    pub fn bind_with(
        session: Arc<Session>,
        addr: impl ToSocketAddrs,
        limits: ServeLimits,
    ) -> io::Result<TcpServer> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            session,
            limits,
        })
    }

    /// [`bind_with`](Self::bind_with) under the default [`ServeLimits`].
    pub fn bind(session: Arc<Session>, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        TcpServer::bind_with(session, addr, ServeLimits::default())
    }

    /// The address the server accepts connections on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one thread per connection up to the configured
    /// cap; each connection runs its own [`serve_lines_with`] loop against the
    /// shared session (warm requests on published state run concurrently; mutation
    /// requests serialize per dataset, so concurrent clients see deterministic
    /// responses). Connections past the cap receive one structured error line and
    /// are closed. Connection-level I/O errors are logged to stderr and never take
    /// the server down.
    pub fn run(&self) -> io::Result<()> {
        let active = Arc::new(AtomicUsize::new(0));
        let metrics = self.session.metrics();
        let connections_total = metrics.counter(
            "fg_connections_total",
            "TCP connections accepted over the server's lifetime.",
            &[],
        );
        let connections_refused = metrics.counter(
            "fg_connections_refused_total",
            "TCP connections refused because the server was at capacity.",
            &[],
        );
        let connections_active = metrics.gauge(
            "fg_connections_active",
            "TCP connections currently being served.",
            &[],
        );
        for stream in self.listener.incoming() {
            match stream {
                Ok(mut stream) => {
                    if self.limits.max_connections > 0
                        && active.load(Ordering::Relaxed) >= self.limits.max_connections
                    {
                        connections_refused.inc();
                        let refusal = transport_error(
                            0,
                            &format!(
                                "server at capacity ({} connections); retry later",
                                self.limits.max_connections
                            ),
                        );
                        let _ = stream.write_all(refusal.as_bytes());
                        let _ = stream.write_all(b"\n");
                        let _ = stream.shutdown(std::net::Shutdown::Both);
                        continue;
                    }
                    connections_total.inc();
                    connections_active.inc();
                    active.fetch_add(1, Ordering::Relaxed);
                    let guard =
                        ConnectionGuard(Arc::clone(&active), Arc::clone(&connections_active));
                    let session = Arc::clone(&self.session);
                    let limits = self.limits;
                    std::thread::spawn(move || {
                        let _guard = guard;
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "<unknown>".to_string());
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(clone) => clone,
                            Err(e) => {
                                eprintln!("fg serve: cannot clone stream for {peer}: {e}");
                                return;
                            }
                        });
                        if let Err(e) = serve_lines_with(&session, reader, stream, &limits) {
                            eprintln!("fg serve: connection {peer} failed: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("fg serve: accept failed: {e}"),
            }
        }
        Ok(())
    }

    /// Spawn the accept loop on a background thread under explicit limits (used by
    /// tests and the one-shot client helpers); the thread runs until the process
    /// exits.
    pub fn spawn_with(
        session: Arc<Session>,
        addr: impl ToSocketAddrs,
        limits: ServeLimits,
    ) -> io::Result<SocketAddr> {
        let server = TcpServer::bind_with(session, addr, limits)?;
        let local = server.local_addr()?;
        std::thread::spawn(move || {
            let _ = server.run();
        });
        Ok(local)
    }

    /// [`spawn_with`](Self::spawn_with) under the default [`ServeLimits`].
    pub fn spawn(session: Arc<Session>, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        TcpServer::spawn_with(session, addr, ServeLimits::default())
    }
}

/// A minimal Prometheus-style scrape listener for a [`MetricsRegistry`]
/// (`fg serve --metrics-port`). Speaks just enough HTTP for `curl` and a
/// Prometheus scraper: it reads and discards the request head (bounded by
/// [`ServeLimits::max_line_bytes`] per line, so an abusive client cannot balloon
/// memory), then answers every request with a `200 OK` carrying the rendered
/// text exposition and closes the connection (`Connection: close`, HTTP/1.0).
///
/// Runs strictly one-way: it *renders* the registry and never touches session
/// state, so scraping cannot perturb the byte-deterministic protocol port.
pub struct MetricsServer {
    listener: TcpListener,
    registry: Arc<MetricsRegistry>,
    limits: ServeLimits,
}

impl MetricsServer {
    /// Bind the scrape listener (port 0 for ephemeral; see
    /// [`local_addr`](Self::local_addr)).
    pub fn bind(
        registry: Arc<MetricsRegistry>,
        addr: impl ToSocketAddrs,
        limits: ServeLimits,
    ) -> io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
            registry,
            limits,
        })
    }

    /// The address the listener accepts scrapes on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept scrapes forever, one short-lived thread per connection.
    /// Connection-level I/O errors are logged and never take the listener down.
    pub fn run(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let registry = Arc::clone(&self.registry);
                    let max_line = self.limits.max_line_bytes;
                    std::thread::spawn(move || {
                        if let Err(e) = serve_scrape(&registry, stream, max_line) {
                            eprintln!("fg serve: metrics scrape failed: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("fg serve: metrics accept failed: {e}"),
            }
        }
        Ok(())
    }

    /// Bind and run the accept loop on a background thread; the thread runs until
    /// the process exits. Returns the bound address.
    pub fn spawn(
        registry: Arc<MetricsRegistry>,
        addr: impl ToSocketAddrs,
        limits: ServeLimits,
    ) -> io::Result<SocketAddr> {
        let server = MetricsServer::bind(registry, addr, limits)?;
        let local = server.local_addr()?;
        std::thread::spawn(move || {
            let _ = server.run();
        });
        Ok(local)
    }
}

/// Answer one scrape connection: drain the request head (up to the first blank
/// line or EOF), then write the full exposition and close.
fn serve_scrape(
    registry: &MetricsRegistry,
    stream: TcpStream,
    max_line_bytes: usize,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    while let Some((bytes, overlong)) = read_bounded_line(&mut reader, max_line_bytes)? {
        if overlong {
            // The head line blew the window: answer anyway and close — the
            // response never depends on the request.
            break;
        }
        if bytes == b"\r\n" || bytes == b"\n" {
            break;
        }
    }
    let body = registry.render();
    let mut writer = stream;
    writer.write_all(
        format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    writer.write_all(body.as_bytes())?;
    writer.flush()?;
    let _ = writer.shutdown(std::net::Shutdown::Both);
    Ok(())
}

/// One-shot scrape client: fetch and return the exposition body from a
/// [`MetricsServer`] (used by tests, CI, and `fg client --metrics`).
pub fn scrape_metrics(addr: impl ToSocketAddrs) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    BufReader::new(stream).read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_head, body)) => Ok(body.to_string()),
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "metrics response carries no HTTP header/body separator",
        )),
    }
}

/// One-shot client: connect, send each request line, half-close the write side,
/// and collect every response line until the server finishes. This is what
/// `fg client` uses; tests drive servers with it too.
///
/// Writing happens on its own thread while this thread drains responses, so a
/// batch whose early responses are large (a full-graph classify) followed by
/// large request lines cannot deadlock on full socket buffers. A broken-pipe
/// write error is tolerated (the server may legitimately close mid-batch after a
/// `shutdown` request); other write errors are surfaced.
pub fn send_requests(addr: impl ToSocketAddrs, lines: &[String]) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let outgoing: Vec<String> = lines.to_vec();
    let writer_thread = std::thread::spawn(move || -> io::Result<()> {
        for line in &outgoing {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        writer.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    });
    let mut responses = Vec::new();
    let mut read_error = None;
    for line in reader.lines() {
        match line {
            Ok(line) => responses.push(line),
            Err(e) => {
                read_error = Some(e);
                break;
            }
        }
    }
    match writer_thread.join().expect("writer thread panicked") {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
        Err(e) => return Err(e),
    }
    if let Some(e) = read_error {
        return Err(e);
    }
    Ok(responses)
}
