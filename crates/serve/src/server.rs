//! Transports for a [`Session`]: a line loop over arbitrary reader/writer pairs
//! (stdin/stdout for `fg serve`, a socket per TCP connection) and a `std::net` TCP
//! listener that shares one session across concurrent connections.

use crate::session::{Flow, Session};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::Arc;

/// Serve JSON-lines requests from `reader`, writing one response line per request
/// to `writer`, until EOF or a `shutdown` request. Line numbers (1-based, counting
/// every received line) are echoed in error responses.
pub fn serve_lines<R: BufRead, W: Write>(
    session: &Session,
    reader: R,
    mut writer: W,
) -> io::Result<()> {
    for (index, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            // Blank lines are tolerated between requests (they still count for
            // line numbering so errors point at the right request).
            continue;
        }
        let (response, flow) = session.handle_line(&line, index + 1);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        if flow == Flow::Close {
            break;
        }
    }
    Ok(())
}

/// A TCP front-end sharing one [`Session`] across connections.
pub struct TcpServer {
    listener: TcpListener,
    session: Arc<Session>,
}

impl TcpServer {
    /// Bind the listener (use port 0 for an ephemeral port; the bound address is
    /// reported by [`local_addr`](Self::local_addr)).
    pub fn bind(session: Arc<Session>, addr: impl ToSocketAddrs) -> io::Result<TcpServer> {
        Ok(TcpServer {
            listener: TcpListener::bind(addr)?,
            session,
        })
    }

    /// The address the server accepts connections on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept connections forever, one thread per connection; each connection runs
    /// its own [`serve_lines`] loop against the shared session (request handling is
    /// serialized inside the session, so concurrent clients see deterministic
    /// responses). Connection-level I/O errors are logged to stderr and never take
    /// the server down.
    pub fn run(&self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            match stream {
                Ok(stream) => {
                    let session = Arc::clone(&self.session);
                    std::thread::spawn(move || {
                        let peer = stream
                            .peer_addr()
                            .map(|a| a.to_string())
                            .unwrap_or_else(|_| "<unknown>".to_string());
                        let reader = BufReader::new(match stream.try_clone() {
                            Ok(clone) => clone,
                            Err(e) => {
                                eprintln!("fg serve: cannot clone stream for {peer}: {e}");
                                return;
                            }
                        });
                        if let Err(e) = serve_lines(&session, reader, stream) {
                            eprintln!("fg serve: connection {peer} failed: {e}");
                        }
                    });
                }
                Err(e) => eprintln!("fg serve: accept failed: {e}"),
            }
        }
        Ok(())
    }

    /// Spawn the accept loop on a background thread (used by tests and the one-shot
    /// client helpers); the thread runs until the process exits.
    pub fn spawn(session: Arc<Session>, addr: impl ToSocketAddrs) -> io::Result<SocketAddr> {
        let server = TcpServer::bind(session, addr)?;
        let local = server.local_addr()?;
        std::thread::spawn(move || {
            let _ = server.run();
        });
        Ok(local)
    }
}

/// One-shot client: connect, send each request line, half-close the write side,
/// and collect every response line until the server finishes. This is what
/// `fg client` uses; tests drive servers with it too.
///
/// Writing happens on its own thread while this thread drains responses, so a
/// batch whose early responses are large (a full-graph classify) followed by
/// large request lines cannot deadlock on full socket buffers. A broken-pipe
/// write error is tolerated (the server may legitimately close mid-batch after a
/// `shutdown` request); other write errors are surfaced.
pub fn send_requests(addr: impl ToSocketAddrs, lines: &[String]) -> io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    let outgoing: Vec<String> = lines.to_vec();
    let writer_thread = std::thread::spawn(move || -> io::Result<()> {
        for line in &outgoing {
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
        }
        writer.flush()?;
        writer.shutdown(std::net::Shutdown::Write)?;
        Ok(())
    });
    let mut responses = Vec::new();
    let mut read_error = None;
    for line in reader.lines() {
        match line {
            Ok(line) => responses.push(line),
            Err(e) => {
                read_error = Some(e);
                break;
            }
        }
    }
    match writer_thread.join().expect("writer thread panicked") {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::BrokenPipe => {}
        Err(e) => return Err(e),
    }
    if let Some(e) = read_error {
        return Err(e);
    }
    Ok(responses)
}
