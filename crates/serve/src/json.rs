//! Minimal, dependency-free JSON: a [`Json`] value type, a strict parser with
//! character positions in its error messages, and a canonical renderer.
//!
//! The serving protocol is JSON-*lines* — one request object per line, one response
//! object per line — so the parser rejects trailing garbage after the top-level
//! value and never needs streaming. Numbers are kept as `f64` (integers up to 2⁵³
//! round-trip exactly, which covers every counter and node id the protocol
//! carries); rendering writes integral numbers without a decimal point so counters
//! look like counters.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved for deterministic rendering.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(p.err("unexpected trailing characters after the JSON value"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer (rejects fractions and
    /// out-of-range values).
    pub fn as_usize(&self) -> Option<usize> {
        let v = self.as_f64()?;
        if v.fract() == 0.0 && (0.0..9.007_199_254_740_992e15).contains(&v) {
            Some(v as usize)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Build a number from a usize (exact up to 2⁵³).
    pub fn num(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl fmt::Display for Json {
    /// Canonical single-line rendering (no insignificant whitespace).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Inf; null is the least-surprising spelling.
                    write!(f, "null")
                } else if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> String {
        format!("char {}: {message}", self.pos + 1)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(&format!("unexpected character '{}'", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries are
                    // valid; find the end of the current char).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, String> {
        // self.pos is at 'u'.
        let hex = |p: &Self, start: usize| -> Result<u32, String> {
            let slice = p
                .bytes
                .get(start..start + 4)
                .ok_or_else(|| p.err("truncated \\u escape"))?;
            let text = std::str::from_utf8(slice).map_err(|_| p.err("invalid \\u escape"))?;
            u32::from_str_radix(text, 16).map_err(|_| p.err("invalid \\u escape"))
        };
        let first = hex(self, self.pos + 1)?;
        self.pos += 5;
        if (0xd800..0xdc00).contains(&first) {
            // High surrogate: require the paired low surrogate.
            if self.bytes.get(self.pos) == Some(&b'\\')
                && self.bytes.get(self.pos + 1) == Some(&b'u')
            {
                let second = hex(self, self.pos + 2)?;
                if (0xdc00..0xe000).contains(&second) {
                    self.pos += 6;
                    let combined = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                    return char::from_u32(combined)
                        .ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate in \\u escape"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> String {
        Json::parse(text).unwrap().to_string()
    }

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip(" -12.5e2 "), "-1250");
        assert_eq!(round_trip("3.25"), "3.25");
        assert_eq!(
            round_trip("\"a\\nb\\\"c\\u0041\""),
            "\"a\\nb\\\"c\\u0041\"".replace("\\u0041", "A")
        );
        assert_eq!(round_trip("[1, 2, [3], {}]"), "[1,2,[3],{}]");
        assert_eq!(
            round_trip("{\"a\": 1, \"b\": [true, null]}"),
            "{\"a\":1,\"b\":[true,null]}"
        );
        assert_eq!(round_trip("[]"), "[]");
    }

    #[test]
    fn surrogate_pairs_and_unicode_survive() {
        assert_eq!(round_trip("\"\\ud83d\\ude00\""), "\"😀\"");
        assert_eq!(round_trip("\"héllo\""), "\"héllo\"");
        assert!(Json::parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn errors_carry_positions() {
        for (input, fragment) in [
            ("", "end of input"),
            ("{", "string key"),
            ("{\"a\" 1}", "expected ':'"),
            ("[1 2]", "',' or ']'"),
            ("nul", "invalid literal"),
            ("\"abc", "unterminated"),
            ("{} extra", "trailing"),
            ("{\"a\":1,}", "string key"),
            ("+1", "unexpected character"),
        ] {
            let err = Json::parse(input).unwrap_err();
            assert!(err.contains("char "), "{input}: {err}");
            assert!(err.contains(fragment), "{input}: {err}");
        }
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = Json::parse("{\"cmd\":\"seed\",\"add\":[[3,1]],\"flag\":true,\"n\":7}").unwrap();
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("seed"));
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(7));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        let add = v.get("add").and_then(Json::as_array).unwrap();
        assert_eq!(add[0].as_array().unwrap()[1].as_usize(), Some(1));
        assert!(v.get("absent").is_none());
        assert!(Json::Num(1.5).as_usize().is_none());
        assert!(Json::Num(-1.0).as_usize().is_none());
    }

    #[test]
    fn rendering_escapes_and_formats_numbers() {
        let v = Json::obj(vec![
            ("s", Json::str("a\"b\\c\nd")),
            ("int", Json::num(42)),
            ("float", Json::Num(0.5)),
            ("nan", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            v.to_string(),
            "{\"s\":\"a\\\"b\\\\c\\nd\",\"int\":42,\"float\":0.5,\"nan\":null}"
        );
    }
}
