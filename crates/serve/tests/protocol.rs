//! End-to-end protocol tests: session semantics, error handling, warm-up /
//! incremental counters, stdio loop, and concurrent TCP clients.

use fg_core::prelude::*;
use fg_serve::{send_requests, serve_lines, Json, Session, TcpServer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

/// Write a synthetic dataset (edge list + sparse seed labels + full truth labels)
/// into a temp dir; returns (dir, edges, seeds, truth, labeling).
fn dataset(name: &str) -> (PathBuf, PathBuf, PathBuf, Labeling) {
    let dir = std::env::temp_dir().join(format!("fg_serve_test_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = GeneratorConfig::balanced(400, 8.0, 3, 8.0).unwrap();
    let mut rng = StdRng::seed_from_u64(42);
    let syn = generate(&cfg, &mut rng).unwrap();
    let seeds = syn.labeling.stratified_sample(0.08, &mut rng);
    let edges = dir.join("edges.tsv");
    let seeds_path = dir.join("seeds.tsv");
    fg_datasets::write_edge_list(&edges, &syn.graph).unwrap();
    let mut seed_lines = String::new();
    for (node, label) in seeds.as_slice().iter().enumerate() {
        if let Some(c) = label {
            seed_lines.push_str(&format!("{node}\t{c}\n"));
        }
    }
    std::fs::write(&seeds_path, seed_lines).unwrap();
    (dir, edges, seeds_path, syn.labeling)
}

fn parse(response: &str) -> Json {
    Json::parse(response).unwrap_or_else(|e| panic!("unparsable response {response}: {e}"))
}

fn assert_ok(response: &str) -> Json {
    let parsed = parse(response);
    assert_eq!(
        parsed.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected success: {response}"
    );
    parsed.get("result").cloned().unwrap()
}

fn load_line(edges: &std::path::Path, seeds: &std::path::Path) -> String {
    format!(
        "{{\"cmd\":\"load\",\"edges\":\"{}\",\"labels\":\"{}\",\"nodes\":400,\"classes\":3}}",
        edges.display(),
        seeds.display()
    )
}

#[test]
fn session_serves_load_seed_estimate_classify_with_incremental_counters() {
    let (dir, edges, seeds_path, truth) = dataset("flow");
    let session = Session::new(Threads::Serial, None);

    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 1);
    let loaded = assert_ok(&resp);
    assert_eq!(loaded.get("nodes").and_then(Json::as_usize), Some(400));
    let labeled_before = loaded.get("labeled").and_then(Json::as_usize).unwrap();

    // Warm-up estimate: exactly one full summarization (the engine build).
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    let estimate = assert_ok(&resp);
    assert_eq!(
        estimate
            .get("summary_computations")
            .and_then(Json::as_usize),
        Some(1),
        "{resp}"
    );
    let h = estimate.get("h").and_then(Json::as_array).unwrap();
    assert_eq!(h.len(), 3);

    // Mutate a seed: the engine absorbs it as a delta.
    let seeds = fg_datasets::read_labels(&seeds_path, 400, 3).unwrap();
    let node = seeds.unlabeled_nodes()[0];
    let (resp, _) = session.handle_line(
        &format!(
            "{{\"cmd\":\"seed\",\"add\":[[{node},{}]]}}",
            truth.class_of(node)
        ),
        3,
    );
    let seeded = assert_ok(&resp);
    assert_eq!(
        seeded.get("labeled").and_then(Json::as_usize),
        Some(labeled_before + 1)
    );
    assert_eq!(
        seeded.get("delta_applied").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(
        seeded.get("engine_reused").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(
        seeded.get("full_recomputes").and_then(Json::as_usize),
        Some(0)
    );
    assert!(seeded.get("rows_touched").and_then(Json::as_usize).unwrap() > 0);

    // Classify after the mutation: zero full summarizations — the incremental
    // engine published the updated counts.
    let (resp, _) = session.handle_line("{\"cmd\":\"classify\",\"method\":\"dcer\"}", 4);
    let classify = assert_ok(&resp);
    assert_eq!(
        classify
            .get("summary_computations")
            .and_then(Json::as_usize),
        Some(0),
        "{resp}"
    );
    let predictions = classify
        .get("predictions")
        .and_then(Json::as_array)
        .unwrap();
    assert_eq!(predictions.len(), 400);

    // The streamed predictions are bit-identical to a cold batch pipeline on the
    // mutated seed set.
    let graph = fg_datasets::read_edge_list(&edges, 400).unwrap();
    let mut batch_seeds = seeds.clone();
    batch_seeds
        .set_label(node, Some(truth.class_of(node)))
        .unwrap();
    let estimator = fg_core::estimator_by_name("dcer").unwrap();
    let report = Pipeline::on(&graph)
        .seeds(&batch_seeds)
        .estimator(estimator)
        .run()
        .unwrap();
    let served: Vec<usize> = predictions.iter().map(|p| p.as_usize().unwrap()).collect();
    assert_eq!(served, report.outcome.predictions);

    // Node-subset and abstain-aware classification.
    let (resp, _) = session.handle_line(
        "{\"cmd\":\"classify\",\"method\":\"dcer\",\"nodes\":[0,5,9],\"abstain\":true}",
        5,
    );
    let subset = assert_ok(&resp);
    let pairs = subset.get("predictions").and_then(Json::as_array).unwrap();
    assert_eq!(pairs.len(), 3);
    assert_eq!(pairs[1].as_array().unwrap()[0].as_usize(), Some(5));
    assert!(subset
        .get("abstention_rate")
        .and_then(Json::as_f64)
        .is_some());

    // Stats reflect the session history.
    let (resp, _) = session.handle_line("{\"cmd\":\"stats\"}", 6);
    let stats = assert_ok(&resp);
    assert_eq!(
        stats.get("summary_computations").and_then(Json::as_usize),
        Some(1)
    );
    let default = stats
        .get("datasets")
        .and_then(|d| d.get("default"))
        .expect("stats must describe the default dataset");
    // Two resident engine states: the loaded seed set and the mutated fork.
    assert_eq!(
        default.get("engine_states").and_then(Json::as_usize),
        Some(2)
    );
    let engines = default.get("engines").and_then(Json::as_array).unwrap();
    assert_eq!(engines.len(), 2);
    assert!(
        engines
            .iter()
            .any(|e| e.get("delta_mutations").and_then(Json::as_usize) == Some(1)),
        "the forked engine absorbed the mutation as a delta: {resp}"
    );
    // The rolling seed fingerprint never fell back to an O(n) re-derivation.
    assert_eq!(
        default
            .get("seed_scratch_derivations")
            .and_then(Json::as_usize),
        Some(0)
    );
    assert!(stats.get("commands").unwrap().get("classify").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_store_keeps_one_live_file_per_mode_across_mutations() {
    let (dir, edges, seeds_path, truth) = dataset("store_prune");
    let store_dir = dir.join("summaries");
    let store = std::sync::Arc::new(fg_core::SummaryStore::open(&store_dir).unwrap());
    let session = Session::new(Threads::Serial, Some(std::sync::Arc::clone(&store)));
    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    assert_ok(&resp);
    // The warm-up persists the loaded seed set's summary (`.fgsum`) and its
    // estimated H (`.fgh`) — both shared with batch runs on the same files.
    let files_with = |suffix: &str| -> Vec<String> {
        store
            .entries()
            .unwrap()
            .into_iter()
            .map(|e| e.file)
            .filter(|f| f.ends_with(suffix))
            .collect()
    };
    assert_eq!(files_with(".fgsum").len(), 1);
    assert_eq!(files_with(".fgh").len(), 1);
    let initial_file = files_with(".fgsum")[0].clone();

    // Each mutation supersedes the previous *session-derived* fingerprint, whose
    // file is pruned when the replacement is persisted — but the loaded seed
    // file's entries survive (batch runs and future sessions re-derive them), so
    // the store holds at most two live summaries: the initial state's and the
    // current one's.
    let seeds = fg_datasets::read_labels(&seeds_path, 400, 3).unwrap();
    for (step, &node) in seeds.unlabeled_nodes().iter().take(3).enumerate() {
        let (resp, _) = session.handle_line(
            &format!(
                "{{\"cmd\":\"seed\",\"add\":[[{node},{}]]}}",
                truth.class_of(node)
            ),
            3 + 2 * step,
        );
        assert_ok(&resp);
        let (resp, _) =
            session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 4 + 2 * step);
        let estimate = assert_ok(&resp);
        assert_eq!(
            estimate
                .get("summary_computations")
                .and_then(Json::as_usize),
            Some(0),
            "{resp}"
        );
        let summaries = files_with(".fgsum");
        assert_eq!(
            summaries.len(),
            2,
            "store accumulated dead files: {summaries:?}"
        );
        assert!(
            summaries.contains(&initial_file),
            "the loaded seed file's shared store entry must survive mutations"
        );
        assert_eq!(files_with(".fgh").len(), 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_requests_get_line_numbered_errors_and_never_kill_the_session() {
    let (dir, edges, seeds_path, _) = dataset("errors");
    let session = Session::new(Threads::Serial, None);
    for (line_no, (request, fragment)) in [
        ("{not json", "invalid JSON"),
        ("[1,2,3]", "'cmd'"),
        ("{\"cmd\":\"frobnicate\"}", "unknown command"),
        ("{\"cmd\":\"estimate\"}", "no dataset loaded"),
        ("{\"cmd\":\"seed\",\"add\":[[1,0]]}", "no dataset loaded"),
        (
            "{\"cmd\":\"load\",\"edges\":\"/nonexistent\",\"labels\":\"/nope\",\"nodes\":4,\"classes\":2}",
            "",
        ),
        ("{\"cmd\":\"load\",\"edges\":\"x\"}", "labels"),
    ]
    .iter()
    .enumerate()
    {
        let (resp, flow) = session.handle_line(request, line_no + 1);
        assert_eq!(flow, fg_serve::Flow::Continue);
        let parsed = parse(&resp);
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false), "{resp}");
        assert_eq!(
            parsed.get("line").and_then(Json::as_usize),
            Some(line_no + 1),
            "{resp}"
        );
        let error = parsed.get("error").and_then(Json::as_str).unwrap();
        assert!(error.contains(&format!("line {}", line_no + 1)), "{resp}");
        assert!(error.contains(fragment), "{resp} missing {fragment}");
    }

    // The session still works after all those failures.
    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 8);
    assert_ok(&resp);
    // Invalid mutations are rejected without corrupting state.
    let (resp, _) = session.handle_line("{\"cmd\":\"seed\",\"add\":[[999999,0]]}", 9);
    assert!(resp.contains("\"ok\":false"));
    let (resp, _) = session.handle_line("{\"cmd\":\"seed\",\"remove\":[0],\"id\":7}", 10);
    // node 0 may or may not be labeled; either a success or a clean error is fine,
    // but the id must be echoed.
    assert!(parse(&resp).get("id").is_some());
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"mce\"}", 11);
    assert_ok(&resp);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stdio_loop_and_shutdown() {
    let (dir, edges, seeds_path, _) = dataset("stdio");
    let session = Session::new(Threads::Serial, None);
    let input = format!(
        "{}\n\n{{\"cmd\":\"ping\",\"id\":1}}\n{{\"cmd\":\"shutdown\"}}\n{{\"cmd\":\"ping\",\"id\":2}}\n",
        load_line(&edges, &seeds_path)
    );
    let mut output = Vec::new();
    serve_lines(&session, input.as_bytes(), &mut output).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    // Load + ping + shutdown were answered; the post-shutdown ping was not.
    assert_eq!(lines.len(), 3, "{text}");
    assert!(lines[1].contains("\"pong\""));
    assert!(lines[1].contains("\"id\":1"));
    assert!(lines[2].contains("closing"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_tcp_clients_share_state_and_get_deterministic_responses() {
    let (dir, edges, seeds_path, _) = dataset("tcp");
    let session = Arc::new(Session::new(Threads::Serial, None));
    let addr = TcpServer::spawn(Arc::clone(&session), "127.0.0.1:0").unwrap();

    // One client loads and warms the session.
    let responses = send_requests(
        addr,
        &[
            load_line(&edges, &seeds_path),
            "{\"cmd\":\"estimate\",\"method\":\"mce\"}".to_string(),
        ],
    )
    .unwrap();
    assert_eq!(responses.len(), 2);
    assert_ok(&responses[0]);
    assert_ok(&responses[1]);

    // Four concurrent read-only clients all get byte-identical classify responses.
    let request = "{\"cmd\":\"classify\",\"method\":\"mce\"}".to_string();
    let mut all: Vec<Vec<String>> = std::thread::scope(|scope| {
        (0..4)
            .map(|_| {
                let request = request.clone();
                scope.spawn(move || send_requests(addr, &[request]).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    let reference = all.pop().unwrap();
    assert_eq!(reference.len(), 1);
    assert_ok(&reference[0]);
    for other in &all {
        assert_eq!(other, &reference, "concurrent responses diverged");
    }

    // A malformed request over TCP errors without killing the server.
    let responses = send_requests(
        addr,
        &["oops".to_string(), "{\"cmd\":\"ping\"}".to_string()],
    )
    .unwrap();
    assert_eq!(responses.len(), 2);
    assert!(responses[0].contains("\"ok\":false"));
    assert!(responses[1].contains("pong"));
    std::fs::remove_dir_all(&dir).ok();
}

/// The locking-model guarantee of the serving tier: warm `classify` requests from
/// concurrent clients genuinely overlap inside the dataset's shared read lock.
/// Every warm read passes through a probe that blocks until all four clients have
/// arrived — if warm reads were serialized (one lock-holder at a time), the first
/// reader would wait out the timeout alone and the test would fail loudly.
#[test]
fn warm_reads_from_concurrent_clients_overlap() {
    use std::sync::Condvar;
    use std::time::Duration;

    const CLIENTS: usize = 4;
    let (dir, edges, seeds_path, _) = dataset("overlap");
    let mut session = Session::new(Threads::Serial, None);
    let latch = Arc::new((std::sync::Mutex::new(0usize), Condvar::new()));
    let probe_latch = Arc::clone(&latch);
    session.set_warm_read_probe(Box::new(move || {
        let (count, cv) = &*probe_latch;
        let mut arrived = count.lock().unwrap();
        *arrived += 1;
        cv.notify_all();
        while *arrived < CLIENTS {
            let (guard, timeout) = cv.wait_timeout(arrived, Duration::from_secs(20)).unwrap();
            arrived = guard;
            if timeout.timed_out() {
                panic!(
                    "warm reads did not overlap: only {} of {CLIENTS} readers arrived",
                    *arrived
                );
            }
        }
    }));
    let session = Arc::new(session);

    // Warm up on the write path (engine build) — the probe only fires on warm reads.
    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    let (resp, _) = session.handle_line("{\"cmd\":\"classify\",\"method\":\"dcer\"}", 2);
    assert_ok(&resp);

    let responses: Vec<String> = std::thread::scope(|scope| {
        (0..CLIENTS)
            .map(|_| {
                let session = Arc::clone(&session);
                scope.spawn(move || {
                    let (resp, _) =
                        session.handle_line("{\"cmd\":\"classify\",\"method\":\"dcer\"}", 1);
                    resp
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for other in &responses[1..] {
        assert_eq!(other, &responses[0], "concurrent warm responses diverged");
    }
    assert!(responses[0].contains("\"summary_computations\":0"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn named_datasets_are_independent_and_unloadable() {
    let (dir_a, edges_a, seeds_a, _) = dataset("multi_a");
    let (dir_b, edges_b, seeds_b, _) = dataset("multi_b");
    let session = Session::new(Threads::Serial, None);

    let (resp, _) = session.handle_line(&load_line(&edges_a, &seeds_a), 1);
    assert_ok(&resp);
    let alt_load = format!(
        "{{\"cmd\":\"load\",\"dataset\":\"alt\",\"edges\":\"{}\",\"labels\":\"{}\",\"nodes\":400,\"classes\":3}}",
        edges_b.display(),
        seeds_b.display()
    );
    let (resp, _) = session.handle_line(&alt_load, 2);
    let loaded = assert_ok(&resp);
    assert_eq!(loaded.get("dataset").and_then(Json::as_str), Some("alt"));

    // Each dataset estimates against its own engines and seed state.
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 3);
    assert_ok(&resp);
    let (resp, _) = session.handle_line(
        "{\"cmd\":\"estimate\",\"method\":\"dcer\",\"dataset\":\"alt\"}",
        4,
    );
    assert_ok(&resp);
    let (resp, _) = session.handle_line("{\"cmd\":\"stats\"}", 5);
    let stats = assert_ok(&resp);
    let datasets = stats.get("datasets").unwrap();
    assert!(datasets.get("default").is_some(), "{resp}");
    assert!(datasets.get("alt").is_some(), "{resp}");

    // Unloading one dataset leaves the other serving.
    let (resp, _) = session.handle_line("{\"cmd\":\"unload\",\"dataset\":\"alt\"}", 6);
    assert_ok(&resp);
    let (resp, _) = session.handle_line(
        "{\"cmd\":\"estimate\",\"method\":\"dcer\",\"dataset\":\"alt\"}",
        7,
    );
    assert!(resp.contains("no dataset 'alt' loaded"), "{resp}");
    let (resp, _) = session.handle_line("{\"cmd\":\"classify\",\"method\":\"dcer\"}", 8);
    assert_ok(&resp);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Reverting a mutation lands back on a seed fingerprint whose engines are still
/// resident in the LRU: the `seed` request reports `engine_reused` and performs
/// zero delta work, and the follow-up estimate is computation-free.
#[test]
fn reverting_a_mutation_reuses_the_resident_engine_state() {
    let (dir, edges, seeds_path, truth) = dataset("revert");
    let session = Session::new(Threads::Serial, None);
    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    assert!(resp.contains("\"summary_computations\":1"), "{resp}");

    let seeds = fg_datasets::read_labels(&seeds_path, 400, 3).unwrap();
    let node = seeds.unlabeled_nodes()[0];
    let add = format!(
        "{{\"cmd\":\"seed\",\"add\":[[{node},{}]]}}",
        truth.class_of(node)
    );
    let (resp, _) = session.handle_line(&add, 3);
    let seeded = assert_ok(&resp);
    assert_eq!(
        seeded.get("engine_reused").and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(
        seeded.get("delta_applied").and_then(Json::as_usize),
        Some(1)
    );

    // Removing the same seed returns to the loaded fingerprint, whose engines
    // never left the LRU.
    let (resp, _) = session.handle_line(&format!("{{\"cmd\":\"seed\",\"remove\":[{node}]}}"), 4);
    let reverted = assert_ok(&resp);
    assert_eq!(
        reverted.get("engine_reused").and_then(Json::as_bool),
        Some(true),
        "{resp}"
    );
    assert_eq!(
        reverted.get("delta_applied").and_then(Json::as_usize),
        Some(0)
    );
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 5);
    assert!(resp.contains("\"summary_computations\":0"), "{resp}");

    // Still exactly one full summarization session-wide, across the whole cycle.
    let (resp, _) = session.handle_line("{\"cmd\":\"stats\"}", 6);
    let stats = assert_ok(&resp);
    assert_eq!(
        stats.get("summary_computations").and_then(Json::as_usize),
        Some(1)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A persisted `H` estimate serves a brand-new session (same store, same files)
/// with zero summarizations *and* zero optimizations, bit-identically.
#[test]
fn persisted_h_estimates_serve_fresh_sessions_without_optimization() {
    let (dir, edges, seeds_path, _) = dataset("h_store");
    let store_dir = dir.join("summaries");
    let store = Arc::new(fg_core::SummaryStore::open(&store_dir).unwrap());

    let first = Session::new(Threads::Serial, Some(Arc::clone(&store)));
    let (resp, _) = first.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    let (resp, _) = first.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    let cold = assert_ok(&resp);
    assert_eq!(
        cold.get("optimize_store_hits").and_then(Json::as_usize),
        Some(0)
    );

    let second = Session::new(Threads::Serial, Some(Arc::clone(&store)));
    let (resp, _) = second.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    let (resp, _) = second.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    let warm = assert_ok(&resp);
    assert_eq!(
        warm.get("summary_computations").and_then(Json::as_usize),
        Some(0),
        "{resp}"
    );
    assert_eq!(
        warm.get("optimize_store_hits").and_then(Json::as_usize),
        Some(1),
        "{resp}"
    );
    assert_eq!(
        warm.get("h").unwrap().to_string(),
        cold.get("h").unwrap().to_string(),
        "store-served H must be bit-identical to the estimate that produced it"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn predictions_round_trip_to_cli_file_format() {
    let full = "{\"ok\":true,\"id\":null,\"result\":{\"predictions\":[2,0,1]}}";
    let rendered = fg_serve::predictions_to_file_format(full).unwrap();
    assert_eq!(rendered, "# node\tpredicted_class\n0\t2\n1\t0\n2\t1\n");
    let subset = "{\"ok\":true,\"id\":null,\"result\":{\"predictions\":[[5,1],[9,null]]}}";
    let rendered = fg_serve::predictions_to_file_format(subset).unwrap();
    assert!(rendered.contains("5\t1\n"));
    assert!(rendered.contains("9\tabstain\n"));
    assert!(fg_serve::predictions_to_file_format("{\"ok\":false}").is_none());
}

#[test]
fn engine_lru_evictions_are_counted_in_stats() {
    let (dir, edges, seeds_path, truth) = dataset("evictions");
    // Capacity 1: every seed-set swing past the resident state must evict.
    let session = Session::new(Threads::Serial, None).with_engine_states(1);

    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    assert_ok(&resp);

    let dataset_counter = |session: &Session, id: usize, field: &str| -> usize {
        let (resp, _) = session.handle_line("{\"cmd\":\"stats\"}", id);
        assert_ok(&resp)
            .get("datasets")
            .and_then(|d| d.get("default"))
            .and_then(|d| d.get(field))
            .and_then(Json::as_usize)
            .unwrap_or_else(|| panic!("stats missing datasets.default.{field}: {resp}"))
    };
    assert_eq!(dataset_counter(&session, 3, "engine_evictions"), 0);
    assert_eq!(dataset_counter(&session, 4, "engine_states"), 1);

    // Mutating forks a second engine state; capacity 1 forces the loaded seed
    // set's state out of the LRU.
    let seeds = fg_datasets::read_labels(&seeds_path, 400, 3).unwrap();
    let node = seeds.unlabeled_nodes()[0];
    let (resp, _) = session.handle_line(
        &format!(
            "{{\"cmd\":\"seed\",\"add\":[[{node},{}]]}}",
            truth.class_of(node)
        ),
        5,
    );
    assert_ok(&resp);
    assert_eq!(dataset_counter(&session, 6, "engine_evictions"), 1);
    assert_eq!(dataset_counter(&session, 7, "engine_states"), 1);

    // Swinging back to the original seed set finds its state evicted, forks
    // again, and evicts the intermediate state in turn.
    let (resp, _) = session.handle_line(&format!("{{\"cmd\":\"seed\",\"remove\":[{node}]}}"), 8);
    assert_ok(&resp);
    assert_eq!(dataset_counter(&session, 9, "engine_evictions"), 2);
    assert_eq!(dataset_counter(&session, 10, "engine_states"), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eviction_prefers_cheap_forks_over_fully_summarized_states() {
    let (dir, edges, seeds_path, truth) = dataset("cost_weighted_lru");
    let session = Session::new(Threads::Serial, None).with_engine_states(2);

    let (resp, _) = session.handle_line(&load_line(&edges, &seeds_path), 1);
    assert_ok(&resp);
    // Build the initial state via one full summarization: its rebuild cost is
    // the full n·ℓmax row sweep.
    let (resp, _) = session.handle_line("{\"cmd\":\"estimate\",\"method\":\"dcer\"}", 2);
    assert_ok(&resp);

    let default_stats = |session: &Session, id: usize| -> Json {
        let (resp, _) = session.handle_line("{\"cmd\":\"stats\"}", id);
        assert_ok(&resp)
            .get("datasets")
            .and_then(|d| d.get("default"))
            .cloned()
            .unwrap_or_else(|| panic!("stats missing datasets.default: {resp}"))
    };
    let state_fps = |stats: &Json| -> Vec<String> {
        stats
            .get("engines")
            .and_then(Json::as_array)
            .unwrap()
            .iter()
            .map(|e| {
                e.get("seed_fingerprint")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect()
    };

    let loaded = default_stats(&session, 3);
    let initial_fp = state_fps(&loaded)[0].clone();
    // The full summarization's cost is exposed per state and per dataset.
    let full_rows = loaded
        .get("engines")
        .and_then(Json::as_array)
        .unwrap()
        .first()
        .and_then(|e| e.get("rebuild_rows"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(
        full_rows,
        400 * 5,
        "full summarize sweeps n rows per length"
    );
    assert_eq!(
        loaded.get("engine_rebuild_rows").and_then(Json::as_usize),
        Some(full_rows)
    );

    // Two successive mutations create two cheap fork states (B then C). At
    // capacity 2 the second fork must evict B — the cheap, more recently used
    // fork — not the expensive initial full summarization, even though the
    // initial state is the least recently used.
    let seeds = fg_datasets::read_labels(&seeds_path, 400, 3).unwrap();
    let unlabeled = seeds.unlabeled_nodes();
    let (first, second) = (unlabeled[0], unlabeled[1]);
    let (resp, _) = session.handle_line(
        &format!(
            "{{\"cmd\":\"seed\",\"add\":[[{first},{}]]}}",
            truth.class_of(first)
        ),
        4,
    );
    let fork_fp = assert_ok(&resp)
        .get("seed_fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let (resp, _) = session.handle_line(
        &format!(
            "{{\"cmd\":\"seed\",\"add\":[[{second},{}]]}}",
            truth.class_of(second)
        ),
        5,
    );
    let current_fp = assert_ok(&resp)
        .get("seed_fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let after = default_stats(&session, 6);
    assert_eq!(after.get("engine_states").and_then(Json::as_usize), Some(2));
    assert_eq!(
        after.get("engine_evictions").and_then(Json::as_usize),
        Some(1)
    );
    let fps = state_fps(&after);
    assert!(
        fps.contains(&initial_fp),
        "the fully summarized state must survive cost-weighted eviction: {after:?}"
    );
    assert!(
        fps.contains(&current_fp),
        "the current seed set's state is never evicted: {after:?}"
    );
    assert!(
        !fps.contains(&fork_fp),
        "the cheap intermediate fork is the correct victim: {after:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
