//! Transport-limit tests: bounded request lines, per-connection request budgets,
//! the connection cap, and recovery once capacity frees up. The serving process
//! must answer every abusive input with a structured protocol error and never
//! hang or die.

use fg_serve::{send_requests, serve_lines_with, Json, ServeLimits, Session, TcpServer};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn session() -> Arc<Session> {
    Arc::new(Session::new(fg_core::prelude::Threads::Serial, None))
}

fn parse(line: &str) -> Json {
    Json::parse(line).unwrap_or_else(|e| panic!("unparsable response {line}: {e}"))
}

#[test]
fn overlong_request_line_gets_structured_error_and_closes_connection() {
    let limits = ServeLimits {
        max_line_bytes: 64,
        ..ServeLimits::default()
    };
    // A "line" far past the window, never terminated — followed by a request that
    // must NOT be served (the stream cannot be resynced mid-line).
    let mut input = vec![b'x'; 4096];
    input.extend_from_slice(b"\n{\"cmd\":\"ping\"}\n");
    let mut output = Vec::new();
    serve_lines_with(&session(), &input[..], &mut output, &limits).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 1, "{text}");
    let parsed = parse(lines[0]);
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    let error = parsed.get("error").and_then(Json::as_str).unwrap();
    assert!(error.contains("exceeds 64 bytes"), "{text}");
}

#[test]
fn line_exactly_at_the_limit_is_served() {
    let limits = ServeLimits {
        max_line_bytes: 64,
        ..ServeLimits::default()
    };
    // Pad a ping with spaces to exactly the limit (trailing newline excluded).
    let mut request = String::from("{\"cmd\":\"ping\"}");
    while request.len() < 64 {
        request.insert(0, ' ');
    }
    let input = format!("{request}\n");
    let mut output = Vec::new();
    serve_lines_with(&session(), input.as_bytes(), &mut output, &limits).unwrap();
    let text = String::from_utf8(output).unwrap();
    assert!(text.contains("pong"), "{text}");
}

#[test]
fn invalid_utf8_request_errors_without_killing_the_connection() {
    let limits = ServeLimits::default();
    let mut input: Vec<u8> = vec![0xff, 0xfe, 0x80];
    input.extend_from_slice(b"\n{\"cmd\":\"ping\",\"id\":2}\n");
    let mut output = Vec::new();
    serve_lines_with(&session(), &input[..], &mut output, &limits).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[0].contains("not valid UTF-8"), "{text}");
    assert!(lines[1].contains("pong"), "{text}");
    // The error is pinned to line 1, the ping to line 2's id.
    assert_eq!(
        parse(lines[0]).get("line").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(parse(lines[1]).get("id").and_then(Json::as_usize), Some(2));
}

#[test]
fn request_budget_closes_the_connection_after_the_last_allowed_response() {
    let limits = ServeLimits {
        max_requests_per_connection: 2,
        ..ServeLimits::default()
    };
    let input =
        "{\"cmd\":\"ping\",\"id\":1}\n{\"cmd\":\"ping\",\"id\":2}\n{\"cmd\":\"ping\",\"id\":3}\n";
    let mut output = Vec::new();
    serve_lines_with(&session(), input.as_bytes(), &mut output, &limits).unwrap();
    let text = String::from_utf8(output).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[0].contains("\"id\":1"));
    assert!(lines[1].contains("\"id\":2"));
}

#[test]
fn connections_past_the_cap_are_refused_and_capacity_recovers() {
    let limits = ServeLimits {
        max_connections: 1,
        ..ServeLimits::default()
    };
    let addr = TcpServer::spawn_with(session(), "127.0.0.1:0", limits).unwrap();

    // Occupy the only slot and prove the handler is live with a round-trip.
    let first = TcpStream::connect(addr).unwrap();
    let mut writer = first.try_clone().unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    writer.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    writer.flush().unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("pong"), "{line}");

    // A second client is refused with one structured error line, then EOF.
    let refused = send_requests(addr, &["{\"cmd\":\"ping\"}".to_string()]).unwrap();
    assert_eq!(refused.len(), 1, "{refused:?}");
    let parsed = parse(&refused[0]);
    assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
    assert!(
        parsed
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("at capacity"),
        "{refused:?}"
    );

    // Releasing the slot lets new clients in (the gauge decrements when the
    // handler exits, so poll briefly).
    drop(reader);
    drop(writer);
    drop(first);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let responses = send_requests(addr, &["{\"cmd\":\"ping\"}".to_string()]).unwrap();
        if responses.len() == 1 && responses[0].contains("pong") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "capacity never recovered: {responses:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}
